"""The supervisor: a resident daemon owning a pool of camera streams.

:class:`FleetService` is the long-running process the batch layers never
had.  It owns admitted streams, paces their windows against the
:class:`~repro.service.pacing.FrameClock`, dispatches window compute
through the existing :class:`~repro.exec.scheduler.Scheduler` (over any
execution backend, ``queue:N`` included), journals every lifecycle event
in the :class:`~repro.service.session.SessionJournal`, and serves the
:class:`~repro.service.control.ControlServer` -- while absorbing worker
deaths, dispatch failures, deadline misses, SIGTERM, and SIGKILL without
crashing or stalling.

**The window unit.**  A stream of ``duration_s`` splits into windows of
``window_s`` stream-seconds.  Window ``i``'s compute is a *prefix run*:
the stream's cell truncated to the window's end (``duration_s = end_i``),
executed by the ordinary stateless shard machinery.  A prefix run is a
pure deterministic function of the cell -- no weight snapshots cross
process boundaries, any worker can compute any window, a retried window
is bit-identical, and the final window's result *is* the batch sweep's
full-cell result.  The cost is recompute (window ``i`` re-simulates
``[0, end_i)``, so serving a W-window stream costs O(W^2) total stream
seconds), which buys the property everything else here stands on:
SIGKILL the daemon anywhere and every completed window's journaled
record is byte-identical to an uninterrupted run's.

**Incremental windows.**  The default ``window_mode="incremental"``
keeps the prefix run's *results* while dropping its recompute: window
``i``'s shard carries the run-state snapshot emitted by window ``i-1``
(:mod:`repro.core.snapshot` -- weights, buffer, RNG, clock, committed
records) and resumes from it, executing only its own ``window_s`` of
stream -- O(W) total.  Snapshots are journaled *before* their window
record, so a crash anywhere restarts from the last journaled snapshot
and recomputes at most one window.  The contract is bit-identity, never
best-effort: a snapshot that fails validation (version bump, policy or
seed mismatch, unaligned stream prefix) is discarded and the window
falls back to a full prefix run -- identical output, just slower.
``window_mode="prefix"`` (or ``REPRO_WINDOW_MODE=prefix``) disables
snapshots entirely and restores the pure stateless dispatch.

**Threads.**  The supervisor loop owns all state and runs in the calling
thread.  A dispatcher thread feeds batches of window shards through the
scheduler (so a slow backend never blocks pacing) and posts outcomes
back.  The control server's HTTP threads touch the service only through
the thread-safe command queue and the snapshot lock.

**Per-stream state machine.**  At most one window of a stream is in
flight (window ``i+1``'s prefix contains ``i``; running both at once
buys nothing).  In *paced* mode a window arriving while its predecessor
is unfinished is a deadline miss: the stream's
:class:`~repro.service.degrade.DegradationLadder` escalates and the
arriving window is deferred (computed fresh, late), served stale, or
shed, per its level.  In *eager* mode (``speedup=0``) windows are
released by completion -- no deadlines, no misses, fully deterministic
sessions (what the crash-recovery digest harness runs).  A window whose
dispatch fails terminally (retries exhausted, fleet dead) is journaled
as shed with its frames counted dropped and the ladder escalated --
an infrastructure failure degrades output, never liveness.

**Cross-camera sharing.**  Under an enabled
:class:`~repro.share.policy.SharingPolicy` (``repro serve --sharing
cluster``), streams are clustered by drift fingerprint as they are
admitted (:class:`~repro.share.cluster.ClusterTracker`) and a cluster's
windows route through a shared weight state: each window shard carries
the cluster's newest encoded state, runs under a
:class:`~repro.share.runtime.ClusterRuntime`, and returns the updated
state, which is journaled as a ``cluster`` record so a resumed session
keeps its accumulated reuse.  Because that state is read-modify-write,
at most one window per *cluster* (not just per stream) is in flight at a
time.  With sharing off -- the default -- none of this machinery runs
and the journal is byte-identical to the historical format.

**Admission control.**  Admitting a new stream while any live stream is
shedding windows would only deepen the overload, so ``POST /admit``
for an unknown stream is refused with a typed
:class:`~repro.errors.AdmissionRefused` (HTTP 503) while any
non-retired stream sits at SHED; re-admits of known streams (idempotent
no-ops or journal re-attaches) always succeed.
"""

from __future__ import annotations

import json
import os
import queue as queue_module
import signal
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.cache import CACHE_ENV
from repro.core.runner import FIG2_KINDS, GPU_PLATFORMS, SYSTEM_BUILDERS
from repro.core.snapshot import stream_prefix_aligned
from repro.data.scenarios import SCENARIO_NAMES, build_scenario
from repro.errors import AdmissionRefused, ConfigurationError, ProtocolError
from repro.exec import protocol
from repro.exec.backends import resolve_backend
from repro.exec.scheduler import Scheduler
from repro.exec.shard import (
    ShardResult,
    ShardSpec,
    batch_signature,
    cell_key,
    cell_label,
    shard_key,
)
from repro.models.zoo import MODEL_PAIRS
from repro.numeric import active_policy
from repro.reference import run_digest
from repro.service.control import ControlServer
from repro.service.degrade import DegradationLadder, DegradeLevel
from repro.service.pacing import FrameClock, StreamPacer
from repro.service.session import (
    SessionJournal,
    StreamLog,
    session_fingerprint,
    session_path,
)
from repro.batching import active_batching
from repro.share.cluster import ClusterTracker
from repro.share.policy import active_sharing

__all__ = [
    "FleetService",
    "ServiceConfig",
    "StreamState",
    "WINDOW_MODE_ENV",
    "WINDOW_MODES",
]

WINDOW_MODE_ENV = "REPRO_WINDOW_MODE"
"""Environment default for :attr:`ServiceConfig.window_mode`."""

WINDOW_MODES = ("incremental", "prefix")


@dataclass
class ServiceConfig:
    """Everything a :class:`FleetService` needs besides its streams.

    Attributes:
        out_dir: Output directory -- session journal, final ``state.json``
            snapshot, and (for the queue backend) the queue directory all
            live under it.  Restarting on the same directory resumes.
        window_s: Window length in stream seconds.
        speedup: Stream seconds per wall second (``0`` = eager mode; see
            :class:`~repro.service.pacing.FrameClock`).
        backend: Execution backend spec (``serial`` / ``process[:N]`` /
            ``subprocess[:N]`` / ``queue[:N]``) or instance; None uses
            the ambient selection.
        jobs: Worker count when the backend spec carries no ``:N``.
        control_port: Control-plane TCP port (``0`` = ephemeral; None
            disables the control plane).
        degrade: ``False`` pins every ladder at NORMAL (misses become
            plain lateness).
        stay: Keep running after every stream retires (a true resident
            daemon, waiting for admits); default exits when idle.
        tick_s: Supervisor loop sleep between ticks.
        max_attempts: Scheduler retry budget per window shard.
        backoff_base_s: Scheduler retry backoff base.
        max_inflight: Backpressure cap on windows dispatched-but-
            unfinished across all streams (None = ``2 * workers``):
            admitting a thousand streams must queue windows, not
            swamp the dispatch layer.
        window_mode: ``"incremental"`` (resume each window from its
            predecessor's run-state snapshot; O(window) per window) or
            ``"prefix"`` (stateless full-prefix recompute).  ``None``
            reads ``$REPRO_WINDOW_MODE``, defaulting to incremental.
            Both modes journal byte-identical window records.
    """

    out_dir: str | Path
    window_s: float = 60.0
    speedup: float = 0.0
    backend: object | None = None
    jobs: int = 1
    control_port: int | None = None
    degrade: bool = True
    stay: bool = False
    tick_s: float = 0.005
    max_attempts: int = 3
    backoff_base_s: float = 0.05
    max_inflight: int | None = None
    window_mode: str | None = None

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ConfigurationError(
                f"window_s must be positive, got {self.window_s!r}"
            )
        if self.window_mode is None:
            self.window_mode = (
                os.environ.get(WINDOW_MODE_ENV, "").strip() or "incremental"
            )
        if self.window_mode not in WINDOW_MODES:
            raise ConfigurationError(
                f"window_mode must be one of {', '.join(WINDOW_MODES)}; "
                f"got {self.window_mode!r}"
            )
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )


@dataclass
class StreamState:
    """One admitted stream's live (non-journaled) supervisor state.

    Attributes:
        log: The stream's journal state (durable twin of this object).
        pacer: Its arrival schedule and deadline slack.
        ladder: Its degradation state machine.
        fps: Stream frame rate (drop accounting for shed windows).
        inflight: Window index currently dispatched, or None.
        arrivals_seen: Highest window index whose arrival has been
            processed (paced mode's miss-detection cursor).
        last_fresh_accuracy: Accuracy of the newest fresh window (what a
            stale-served window reports).
        snapshot: Newest run-state snapshot for the stream (from the
            last fresh window, or replayed from the journal on resume);
            None until one exists or in prefix mode.
    """

    log: StreamLog
    pacer: StreamPacer
    ladder: DegradationLadder
    fps: float
    inflight: int | None = None
    arrivals_seen: int = -1
    last_fresh_accuracy: float | None = None
    snapshot: dict | None = None


class FleetService:
    """The resident daemon (see the module docstring for the design).

    Args:
        config: Service configuration.
        cells: Initial streams (grid cells) to admit at startup; cells
            already present in a resumed session journal are not
            re-admitted.
        clock: Injectable monotonic time source for the frame clock
            (tests drive pacing deterministically with a manual clock).
    """

    def __init__(
        self,
        config: ServiceConfig,
        cells: Sequence = (),
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.config = config
        self.policy = active_policy().name
        self.sharing = active_sharing()
        self.batching = active_batching()
        self._clusters = (
            ClusterTracker(self.sharing) if self.sharing.enabled else None
        )
        self._stream_cluster: dict[str, str] = {}
        self._cluster_states: dict[str, dict] = {}
        self._cluster_inflight: set[str] = set()
        self.clock = FrameClock(
            config.speedup, clock if clock is not None else time.monotonic
        )
        self.initial_cells = list(cells)
        self.streams: dict[str, StreamState] = {}
        self.journal: SessionJournal | None = None
        self.control: ControlServer | None = None
        self.draining = False
        self._drain_requested: str | None = None
        self._jobs: queue_module.Queue = queue_module.Queue()
        self._results: queue_module.Queue = queue_module.Queue()
        self._commands: queue_module.Queue = queue_module.Queue()
        self._inflight = 0
        self._max_inflight = 1
        self._snapshot: dict = {"streams": {}}
        self._snapshot_lock = threading.Lock()
        self._dispatcher: threading.Thread | None = None
        self._backend = None
        self._backend_owned = False
        self._workers = 1

    # -- control-plane surface (called from HTTP threads) --------------

    def _command(self, action: str, payload: dict) -> dict:
        reply: queue_module.Queue = queue_module.Queue(maxsize=1)
        self._commands.put((action, payload, reply))
        try:
            response = reply.get(timeout=30.0)
        except queue_module.Empty:
            return {"ok": False, "error": "service did not respond"}
        if "config_error" in response:
            raise ConfigurationError(response["config_error"])
        if "refused" in response:
            raise AdmissionRefused(response["refused"])
        return response

    def command_admit(self, payload: dict) -> dict:
        """Admit one stream (control-plane POST /admit)."""
        return self._command("admit", payload)

    def command_retire(self, key: str) -> dict:
        """Retire one stream (control-plane POST /retire)."""
        return self._command("retire", {"stream": key})

    def command_drain(self) -> dict:
        """Finish in-flight windows, then exit (POST /drain)."""
        return self._command("drain", {})

    def state_snapshot(self) -> dict:
        """The latest supervisor-published state (JSON-safe copy)."""
        with self._snapshot_lock:
            snapshot = self._snapshot
        return json.loads(json.dumps(snapshot))

    # -- the supervisor loop -------------------------------------------

    def run(self) -> int:
        """Serve until drained (or idle, unless ``stay``); returns 0.

        Creating the service on an ``out_dir`` holding a session journal
        *resumes* it: every admitted stream picks up at its next
        unfinished window, completed windows untouched.
        """
        config = self.config
        out = Path(config.out_dir)
        out.mkdir(parents=True, exist_ok=True)
        self._install_signals()
        path = session_path(out)
        self.journal = SessionJournal(
            path,
            session_fingerprint(
                self.policy,
                config.window_s,
                sharing=(
                    self.sharing.name if self.sharing.enabled else None
                ),
            ),
            resume=path.exists(),
        )
        if self.sharing.enabled:
            # Resumed sessions pick their accumulated cluster state
            # back up; fresh ones start empty.
            self._cluster_states = dict(self.journal.clusters)
        self._backend, self._workers, self._backend_owned = resolve_backend(
            config.backend, config.jobs, 2, queue_dir=str(out / "queue")
        )
        self._max_inflight = (
            config.max_inflight
            if config.max_inflight is not None
            else max(2, 2 * self._workers)
        )
        start_detail = {
            "resumed": self.journal.resumed,
            "backend": self._backend.name,
            "workers": self._workers,
            "policy": self.policy,
            "speedup": config.speedup,
            "window_s": config.window_s,
            "window_mode": config.window_mode,
        }
        if self.sharing.enabled:
            start_detail["sharing"] = self.sharing.name
        if self.batching.enabled:
            start_detail["batching"] = self.batching.name
        self.journal.record_event("start", start_detail)
        for log in self.journal.active_streams():
            self._attach(log)
        for cell in self.initial_cells:
            self._admit_cell(cell)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True,
        )
        self._dispatcher.start()
        if config.control_port is not None:
            self.control = ControlServer(self, port=config.control_port)
            self.control.start()
            # Publish the bound port (ephemeral-port runs especially):
            # scripts and tests read it instead of parsing stdout.
            (out / "control.port").write_text(f"{self.control.port}\n")
            self.journal.record_event(
                "control", {"port": self.control.port}
            )
        try:
            while True:
                self._tick()
                if self._should_exit():
                    break
                time.sleep(config.tick_s)
        finally:
            self._shutdown(out)
        return 0

    def _install_signals(self) -> None:
        def handler(signum, frame) -> None:
            # Only a flag: journal appends from a signal frame could
            # interleave with an append the handler interrupted.
            self._drain_requested = signal.Signals(signum).name

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                signal.signal(signum, handler)
            except ValueError:
                # Not the main thread (embedded/test use); the control
                # plane's /drain covers graceful shutdown there.
                return

    def _should_exit(self) -> bool:
        if self.draining:
            return self._inflight == 0
        if self.config.stay:
            return False
        active = any(
            not state.log.retired for state in self.streams.values()
        )
        return not active and self._inflight == 0

    def _tick(self) -> None:
        now = self.clock.now()
        if self._drain_requested is not None and not self.draining:
            self._begin_drain(f"signal:{self._drain_requested}")
        self._process_commands()
        self._drain_results(now)
        for state in list(self.streams.values()):
            if state.log.retired:
                continue
            if not self.draining:
                self._process_arrivals(state, now)
                self._pump(state, now)
            self._maybe_retire(state)
        self._publish_snapshot()

    # -- commands ------------------------------------------------------

    def _process_commands(self) -> None:
        while True:
            try:
                action, payload, reply = self._commands.get_nowait()
            except queue_module.Empty:
                return
            try:
                if action == "admit":
                    response = self._admit_payload(payload)
                elif action == "retire":
                    response = self._retire_command(payload)
                elif action == "drain":
                    self._begin_drain("command")
                    response = {"ok": True, "draining": True}
                else:
                    response = {
                        "ok": False,
                        "error": f"unknown command {action!r}",
                    }
            except AdmissionRefused as exc:
                response = {"ok": False, "refused": str(exc)}
            except ConfigurationError as exc:
                response = {"ok": False, "config_error": str(exc)}
            except Exception as exc:
                # The contract: a control command can never take the
                # supervisor down.
                response = {
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            reply.put(response)

    def _admit_payload(self, payload: dict) -> dict:
        cell_data = dict(payload)
        cell_data.setdefault("type", "system")
        cell_data.setdefault("seed", 0)
        cell_data.setdefault("duration_s", None)
        try:
            cell = protocol.decode_cell(cell_data)
        except ProtocolError as exc:
            raise ConfigurationError(f"bad admit payload: {exc}")
        self._validate_cell(cell)
        self._check_admission(cell)
        state = self._admit_cell(cell)
        return {
            "ok": True,
            "stream": state.log.key,
            "windows": state.log.total_windows,
        }

    def _check_admission(self, cell) -> None:
        """Refuse *new* streams while any live stream is shedding.

        A stream at SHED means the fleet cannot keep up with the load it
        already has; admitting more would convert one overloaded stream
        into many.  Known keys (idempotent re-admits and journal
        re-attaches) pass -- they add no new load.
        """
        key = cell_key(self.policy, self._resolve_cell(cell))
        if key in self.streams or key in self.journal.streams:
            return
        shedding = [
            state.log.key
            for state in self.streams.values()
            if not state.log.retired
            and state.ladder.level == DegradeLevel.SHED
        ]
        if shedding:
            raise AdmissionRefused(
                "fleet is overloaded: "
                f"{len(shedding)} stream(s) at SHED "
                f"(first: {shedding[0]}); retry after recovery"
            )

    def _validate_cell(self, cell) -> None:
        checks = [("scenario", cell.scenario, tuple(SCENARIO_NAMES)),
                  ("pair", cell.pair, tuple(MODEL_PAIRS))]
        if hasattr(cell, "system"):
            checks.append(("system", cell.system, tuple(SYSTEM_BUILDERS)))
        else:
            checks.append(("kind", cell.kind, tuple(FIG2_KINDS)))
            checks.append(("platform", cell.platform, tuple(GPU_PLATFORMS)))
        for field_name, value, known in checks:
            if value not in known:
                raise ConfigurationError(
                    f"unknown {field_name} {value!r}; known: "
                    f"{', '.join(known)}"
                )
        if not isinstance(cell.seed, int) or cell.seed < 0:
            raise ConfigurationError(
                f"seed must be a non-negative integer, got {cell.seed!r}"
            )
        if cell.duration_s is not None and cell.duration_s <= 0:
            raise ConfigurationError(
                f"duration_s must be positive, got {cell.duration_s!r}"
            )

    def _retire_command(self, payload: dict) -> dict:
        key = str(payload.get("stream", ""))
        state = self.streams.get(key)
        if state is None:
            raise ConfigurationError(f"unknown stream {key!r}")
        if state.log.retired:
            return {"ok": True, "stream": key, "already_retired": True}
        self.journal.record_retire(key, "command")
        return {"ok": True, "stream": key}

    def _begin_drain(self, reason: str) -> None:
        if self.draining:
            return
        self.draining = True
        self.journal.record_event("drain", {"reason": reason})

    # -- stream admission / resume -------------------------------------

    def _admit_cell(self, cell) -> StreamState:
        cell = self._resolve_cell(cell)
        key = cell_key(self.policy, cell)
        existing = self.streams.get(key)
        if existing is not None:
            return existing  # idempotent: admitting twice is a no-op
        replayed = self.journal.streams.get(key)
        if replayed is not None:
            # Known from a previous session (commonly: rerunning the
            # same spec over a finished --out).  Re-attach the journal's
            # log -- retired streams stay retired, completed windows are
            # never recomputed.
            return self._attach(replayed)
        if self.draining:
            raise ConfigurationError(
                "service is draining and not admitting new streams"
            )
        log = self.journal.record_admit(
            key, cell, self.policy, cell.duration_s, self.config.window_s
        )
        return self._attach(log)

    def _resolve_cell(self, cell):
        """Pin the scenario-default duration so window math is explicit."""
        if cell.duration_s is None:
            cell = replace(
                cell,
                duration_s=float(build_scenario(cell.scenario).duration_s),
            )
        return cell

    def _attach(self, log: StreamLog) -> StreamState:
        if self._clusters is not None:
            # Incremental greedy assignment in admission order; a resumed
            # session replays admits in journal order, so ids reproduce.
            self._stream_cluster[log.key] = self._clusters.assign(log.cell)
        # Resume re-paces from the next window's boundary: its arrival is
        # one full window of wall time out, exactly as at first admit.
        next_start = min(log.next_window * log.window_s, log.duration_s)
        epoch = self.clock.now() - self.clock.wall_per_stream_s(next_start)
        state = StreamState(
            log=log,
            pacer=self.clock.pacer(log.duration_s, log.window_s, epoch=epoch),
            ladder=DegradationLadder(log.key, enabled=self.config.degrade),
            fps=float(build_scenario(log.cell.scenario).fps),
            arrivals_seen=max(log.windows, default=-1),
            snapshot=log.snapshot,
        )
        for index in sorted(log.windows):
            record = log.windows[index]
            if record.get("mode") == "fresh" and "accuracy" in record:
                state.last_fresh_accuracy = float(record["accuracy"])
        self.streams[log.key] = state
        return state

    # -- pacing, misses, dispatch --------------------------------------

    def _process_arrivals(self, state: StreamState, now: float) -> None:
        if self.clock.eager:
            return
        total = state.log.total_windows
        w = state.arrivals_seen + 1
        while w < total and state.pacer.due(w, now):
            self._on_arrival(state, w)
            state.arrivals_seen = w
            w += 1

    def _on_arrival(self, state: StreamState, w: int) -> None:
        log = state.log
        behind = state.inflight is not None or log.next_window < w
        if not behind:
            return  # caught up: _pump dispatches it this same tick
        transition = state.ladder.on_miss(w)
        if transition is not None:
            self.journal.record_degrade(transition)
        action = state.ladder.action()
        if action in ("dispatch", "defer") or w in log.windows:
            # Deferred: the window stays queued for fresh (late) compute
            # once the stream catches up; only timeliness is lost.
            return
        frames = self._window_frames(state, w)
        if action == "stale":
            self.journal.record_window(
                log.key,
                w,
                "stale",
                accuracy=state.last_fresh_accuracy or 0.0,
                frames=frames,
                dropped=0,
            )
        else:  # shed
            self.journal.record_window(
                log.key, w, "shed", frames=frames, dropped=frames
            )

    def _pump(self, state: StreamState, now: float) -> None:
        if state.inflight is not None:
            return
        w = state.log.next_window
        if w >= state.log.total_windows:
            return
        if not self.clock.eager and not state.pacer.due(w, now):
            return
        if self._inflight >= self._max_inflight:
            return  # backpressure: windows queue, dispatch never swamps
        cid = self._stream_cluster.get(state.log.key)
        if cid is not None and cid in self._cluster_inflight:
            # Cluster state is read-modify-write: a second concurrent
            # window of the same cluster would race on it.  The window
            # waits; in paced mode the ladder charges any lateness.
            return
        spec = self._window_spec(state, w)
        state.inflight = w
        self._inflight += 1
        if cid is not None:
            self._cluster_inflight.add(cid)
        self._jobs.put((state.log.key, w, spec))

    def _window_spec(self, state: StreamState, index: int) -> ShardSpec:
        _, end = state.pacer.span(index)
        end = float(end)
        cell = replace(state.log.cell, duration_s=end)
        cells = (cell,)
        snapshot = None
        emit = False
        if self.config.window_mode == "incremental":
            snap = state.snapshot
            # Only resume a snapshot whose origin lies inside this
            # window's prefix; anything newer (or malformed -- the
            # worker re-validates) means a plain prefix run.
            if (
                snap is not None
                and float(snap.get("origin_duration_s", 0.0)) <= end
            ):
                snapshot = snap
            # The last window's snapshot would never be consumed, and an
            # unaligned boundary cannot be resumed bit-exactly (stream
            # segments re-seed every SEGMENT_S); skip the emit cost.
            emit = (
                index + 1 < state.log.total_windows
                and stream_prefix_aligned(end)
            )
        sharing = "off"
        cluster_state = None
        emit_cluster = False
        if self.sharing.enabled:
            sharing = self.sharing.name
            cid = self._stream_cluster.get(state.log.key)
            cluster_state = self._cluster_states.get(cid)
            emit_cluster = True
        return ShardSpec(
            key=shard_key(self.policy, cells),
            cells=cells,
            indices=(0,),
            policy=self.policy,
            profile=False,
            cache_root=os.environ.get(CACHE_ENV),
            snapshot=snapshot,
            emit_snapshot=emit,
            sharing=sharing,
            cluster_state=cluster_state,
            emit_cluster_state=emit_cluster,
        )

    def _window_frames(self, state: StreamState, index: int) -> int:
        start, end = state.pacer.span(index)
        return int(round((end - start) * state.fps))

    # -- completions ---------------------------------------------------

    def _drain_results(self, now: float) -> None:
        while True:
            try:
                key, w, outcome = self._results.get_nowait()
            except queue_module.Empty:
                return
            self._inflight -= 1
            cid = self._stream_cluster.get(key)
            if cid is not None:
                self._cluster_inflight.discard(cid)
            state = self.streams.get(key)
            if state is None or state.log.retired:
                continue  # retired mid-flight: the result is discarded
            state.inflight = None
            if isinstance(outcome, ShardResult):
                self._on_fresh(state, w, outcome, now)
            else:
                self._on_window_failure(state, w, outcome)

    def _on_fresh(
        self, state: StreamState, w: int, outcome: ShardResult, now: float
    ) -> None:
        log = state.log
        result = outcome.results[0]
        start, end = state.pacer.span(w)
        times = np.asarray(result.times)
        frames = int(np.count_nonzero((times >= start) & (times < end)))
        accuracy = float(result.average_accuracy())
        if outcome.snapshot is not None:
            # Journal the snapshot *before* the window record: a crash
            # between the two restarts from this snapshot and recomputes
            # the window; the reverse order could journal a window whose
            # successor has no snapshot to resume from.
            state.snapshot = outcome.snapshot
            self.journal.record_snapshot(log.key, w, outcome.snapshot)
        self.journal.record_window(
            log.key,
            w,
            "fresh",
            digest=run_digest(result),
            accuracy=accuracy,
            frames=frames,
            dropped=0,
            result=protocol.encode_result(result),
        )
        cluster_state = getattr(outcome, "cluster_state", None)
        if cluster_state is not None:
            # After the window record: losing this to a kill costs the
            # next window some reuse, never a window's provenance.
            cid = self._stream_cluster.get(log.key)
            if cid is not None:
                self._cluster_states[cid] = cluster_state
                self.journal.record_cluster(cid, cluster_state)
        state.last_fresh_accuracy = accuracy
        state.pacer.record_completion(w, now)
        if state.ladder.level == DegradeLevel.NORMAL:
            return
        nxt = log.next_window
        caught_up = (
            nxt >= log.total_windows
            or self.clock.eager
            or not state.pacer.due(nxt, now)
        )
        if caught_up:
            transition = state.ladder.on_recover(w)
            if transition is not None:
                self.journal.record_degrade(transition)

    def _on_window_failure(
        self, state: StreamState, w: int, outcome
    ) -> None:
        """Terminal dispatch failure: degrade and keep moving.

        The scheduler already spent its retry/backoff budget; what is
        left is an infrastructure failure the service must absorb.  The
        window is journaled as shed (frames counted dropped), the ladder
        escalates, and the stream continues at the next window -- the
        daemon never crashes or stalls on a dead fleet.
        """
        log = state.log
        transition = state.ladder.on_miss(w, reason="dispatch-failed")
        if transition is not None:
            self.journal.record_degrade(transition)
        self.journal.record_event(
            "window-failed",
            {"stream": log.key, "window": w, "error": str(outcome)[:300]},
        )
        frames = self._window_frames(state, w)
        self.journal.record_window(
            log.key, w, "shed", frames=frames, dropped=frames
        )

    def _maybe_retire(self, state: StreamState) -> None:
        if (
            not state.log.retired
            and state.log.complete
            and state.inflight is None
        ):
            self.journal.record_retire(state.log.key, "complete")

    # -- the dispatcher thread -----------------------------------------

    def _dispatch_loop(self) -> None:
        scheduler = Scheduler(
            self._backend,
            max_attempts=self.config.max_attempts,
            backoff_base_s=self.config.backoff_base_s,
        )
        while True:
            item = self._jobs.get()
            if item is None:
                return
            batch = [item]
            # With batching on, co-due windows merge into one shard, so
            # the pull cap widens from one-per-worker to everything the
            # supervisor has released (bounded by max_inflight anyway) --
            # a serial backend then serves K streams per dispatch.
            limit = self._workers
            if self.batching.enabled and not self.sharing.enabled:
                limit = max(limit, self._max_inflight)
            while len(batch) < limit:
                try:
                    extra = self._jobs.get_nowait()
                except queue_module.Empty:
                    break
                if extra is None:
                    self._jobs.put(None)  # re-arm the stop sentinel
                    break
                batch.append(extra)
            specs, members = self._coalesce(batch)
            posted: set[tuple] = set()

            def on_complete(spec, result):
                for i, (key, w, member) in enumerate(members[spec.key]):
                    posted.add((key, w))
                    if member is spec:
                        self._results.put((key, w, result))
                        continue
                    # A coalesced shard fans back out: each member
                    # window gets a synthetic single-cell result (its
                    # slice is bit-identical to a singleton dispatch),
                    # so _on_fresh and the journal never see batching.
                    snapshot = None
                    if result.snapshots is not None:
                        snapshot = result.snapshots[i]
                    self._results.put(
                        (
                            key,
                            w,
                            ShardResult(
                                key=member.key,
                                results=(result.results[i],),
                                snapshot=snapshot,
                            ),
                        )
                    )

            scheduler.on_complete = on_complete
            try:
                scheduler.run(specs)
            except Exception as exc:
                # Fatal shard failure (retries exhausted / quarantined /
                # deterministic cell error): successes in the batch were
                # already posted via on_complete; the rest surface as
                # per-window failures, never as a dead dispatcher.
                for spec in specs:
                    for key, w, _member in members[spec.key]:
                        if (key, w) not in posted:
                            self._results.put((key, w, exc))

    def _coalesce(self, batch: list) -> tuple[list, dict]:
        """Merge batch-compatible window specs into batched shards.

        The service-side leg of co-windowed batching: K same-geometry
        single-cell window specs pulled in one dispatch round become one
        K-cell batched spec -- advanced in lockstep by the batched
        executor -- instead of K singleton dispatches.  Grouping is a
        performance decision only (the conductor stacks exactly the
        shape-matching calls and runs the rest serially), so every
        member's result stays bit-identical to a singleton dispatch.
        Sharing keeps its own cluster lanes; with it on (or batching
        off) nothing is merged.  Returns ``(specs, members)`` where
        ``members`` maps each dispatched spec key to its ``(stream key,
        window, original spec)`` entries in result order.
        """
        members: dict[str, list] = {}
        specs: list[ShardSpec] = []
        if not self.batching.enabled or self.sharing.enabled:
            for key, w, spec in batch:
                members[spec.key] = [(key, w, spec)]
                specs.append(spec)
            return specs, members
        groups: dict[tuple, list] = {}
        for key, w, spec in batch:
            signature = batch_signature(spec.cells[0])
            groups.setdefault(signature, []).append((key, w, spec))
        for group in groups.values():
            if len(group) == 1:
                key, w, spec = group[0]
                members[spec.key] = [(key, w, spec)]
                specs.append(spec)
                continue
            cells = tuple(spec.cells[0] for _, _, spec in group)
            merged = ShardSpec(
                key=shard_key(self.policy, cells),
                cells=cells,
                indices=tuple(range(len(cells))),
                policy=self.policy,
                profile=False,
                cache_root=os.environ.get(CACHE_ENV),
                batch=self.batching.name,
                snapshots=tuple(spec.snapshot for _, _, spec in group),
                emit_snapshots=tuple(
                    spec.emit_snapshot for _, _, spec in group
                ),
            )
            members[merged.key] = list(group)
            specs.append(merged)
        return specs, members

    # -- snapshot / shutdown -------------------------------------------

    def _publish_snapshot(self) -> None:
        streams = {}
        for key, state in self.streams.items():
            log = state.log
            frames_total = sum(
                int(record.get("frames", 0))
                for record in log.windows.values()
            )
            streams[key] = {
                "label": cell_label(log.cell),
                "windows_total": log.total_windows,
                "windows_done": len(log.windows),
                "next_window": log.next_window,
                "inflight": state.inflight,
                "level": state.ladder.level.name,
                "action": state.ladder.action(),
                "misses": state.ladder.misses,
                "recoveries": state.ladder.recoveries,
                "transitions": len(log.transitions),
                "accuracy": state.last_fresh_accuracy,
                "dropped_frames": log.dropped_frames,
                "drop_rate": (
                    log.dropped_frames / frames_total if frames_total else 0.0
                ),
                "slack_s": state.pacer.last_slack_s,
                "retired": log.retired,
                "retire_reason": log.retire_reason,
            }
            if self.sharing.enabled:
                streams[key]["cluster"] = self._stream_cluster.get(key)
        backend_info = {"name": self._backend.name, "workers": self._workers}
        procs = getattr(self._backend, "_procs", None)
        if procs is not None:
            backend_info["live_workers"] = sum(
                1 for proc in procs if proc.poll() is None
            )
        snapshot = {
            "policy": self.policy,
            "window_s": self.config.window_s,
            "window_mode": self.config.window_mode,
            "speedup": self.config.speedup,
            "eager": self.clock.eager,
            "backend": backend_info,
            "draining": self.draining,
            "resumed": self.journal.resumed,
            "queue_depth": self._jobs.qsize(),
            "inflight": self._inflight,
            "max_inflight": self._max_inflight,
            "events": len(self.journal.events),
            "streams": streams,
        }
        if self.sharing.enabled:
            snapshot["sharing"] = {
                "policy": self.sharing.name,
                "clusters": sorted(set(self._stream_cluster.values())),
                "inflight_clusters": sorted(self._cluster_inflight),
            }
        with self._snapshot_lock:
            self._snapshot = snapshot

    def _shutdown(self, out: Path) -> None:
        self._jobs.put(None)
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=30.0)
        # Windows that completed while we were deciding to exit are done
        # work; journal them rather than recomputing after a restart.
        self._drain_results(self.clock.now())
        for state in self.streams.values():
            if not state.log.retired:
                self._maybe_retire(state)
        if self.control is not None:
            self.control.stop()
        self.journal.record_event("shutdown", {"inflight": self._inflight})
        self._publish_snapshot()
        (out / "state.json").write_text(
            json.dumps(self.state_snapshot(), indent=1, sort_keys=True)
            + "\n"
        )
        if self._backend_owned and self._backend is not None:
            self._backend.close()
