"""The control plane: observe and steer a resident daemon, stdlib-only.

A resident service is useless if the only way to learn its state is to
kill it and read the journal.  This module puts a minimal HTTP/JSON
surface on the daemon -- ``http.server`` and ``http.client`` only, no
web framework -- bound to loopback on a configurable (or ephemeral)
port:

=======  =============  ==================================================
Method   Path           Meaning
=======  =============  ==================================================
GET      ``/health``    Liveness: ``{"ok": true, "draining": ...}``.
GET      ``/state``     The full service snapshot: per-stream accuracy,
                        drop rate, deadline slack, degradation level and
                        transition counts, plus queue depth, in-flight
                        windows, worker/backend health, and session
                        counters.
GET      ``/streams``   Just the per-stream section of ``/state``.
POST     ``/admit``     Body: a grid-cell JSON object (``{"system",
                        "pair", "scenario", "seed", "duration_s"}``).
                        Admits the stream into the running pool.
POST     ``/retire``    Body: ``{"stream": <key>}``.  Retires one stream
                        (its completed windows stay journaled).
POST     ``/drain``     Stop admitting work, finish in-flight windows,
                        then shut down cleanly.
=======  =============  ==================================================

Commands respond ``{"ok": true, ...}`` or an ``{"ok": false, "error"}``
with status 400 (caller mistake -- unknown stream, malformed cell), 503
(``/admit`` refused: the fleet is shedding windows and will not take new
streams -- retry after recovery; the body carries ``"refused": true``),
or 500 (internal error); a control-plane request can never crash the
daemon.
The server runs on a daemon thread (``ThreadingHTTPServer``), so a slow
or wedged client never stalls the supervisor loop; every handler touches
the service only through its thread-safe command/snapshot methods.

:func:`control_request` is the matching client -- what the tests, the CI
chaos leg, and ``curl``-averse operators use.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from threading import Thread

from repro.errors import AdmissionRefused, ConfigurationError

__all__ = ["ControlServer", "control_request"]

#: Loopback only: the control plane carries commands, not public traffic.
DEFAULT_HOST = "127.0.0.1"


class ControlServer:
    """The daemon's HTTP/JSON command-and-state endpoint.

    Args:
        service: The :class:`~repro.service.daemon.FleetService` (or any
            object exposing thread-safe ``state_snapshot()``,
            ``command_admit(payload)``, ``command_retire(key)``, and
            ``command_drain()``).
        host: Bind address (loopback by default).
        port: TCP port; ``0`` binds an ephemeral port -- read
            :attr:`port` after :meth:`start` to learn it (how tests get
            collision-free servers).
    """

    def __init__(
        self, service, host: str = DEFAULT_HOST, port: int = 0
    ) -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    def start(self) -> None:
        """Bind and serve on a daemon thread; returns once listening."""
        service = self.service

        class _Handler(BaseHTTPRequestHandler):
            # The supervisor's own event log is the service's voice;
            # per-request stderr chatter would drown it.
            def log_message(self, *args) -> None:
                pass

            def _reply(self, status: int, payload: dict) -> None:
                body = json.dumps(payload).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:
                try:
                    if self.path == "/health":
                        snapshot = service.state_snapshot()
                        self._reply(
                            200,
                            {
                                "ok": True,
                                "draining": snapshot.get("draining", False),
                            },
                        )
                    elif self.path == "/state":
                        self._reply(200, service.state_snapshot())
                    elif self.path == "/streams":
                        snapshot = service.state_snapshot()
                        self._reply(
                            200, {"streams": snapshot.get("streams", {})}
                        )
                    else:
                        self._reply(
                            404,
                            {"ok": False, "error": f"no route {self.path}"},
                        )
                except Exception as exc:  # pragma: no cover - belt
                    self._reply(500, {"ok": False, "error": str(exc)})

            def do_POST(self) -> None:
                try:
                    length = int(self.headers.get("Content-Length", 0))
                    raw = self.rfile.read(length) if length else b""
                    payload = json.loads(raw) if raw else {}
                    if not isinstance(payload, dict):
                        raise ConfigurationError(
                            "control body must be a JSON object"
                        )
                    if self.path == "/admit":
                        self._reply(200, service.command_admit(payload))
                    elif self.path == "/retire":
                        self._reply(
                            200,
                            service.command_retire(
                                str(payload.get("stream", ""))
                            ),
                        )
                    elif self.path == "/drain":
                        self._reply(200, service.command_drain())
                    else:
                        self._reply(
                            404,
                            {"ok": False, "error": f"no route {self.path}"},
                        )
                except AdmissionRefused as exc:
                    # 503: the request was fine, the fleet is overloaded
                    # -- retry once it recovers.
                    self._reply(
                        503,
                        {
                            "ok": False,
                            "refused": True,
                            "error": str(exc),
                        },
                    )
                except (ConfigurationError, json.JSONDecodeError) as exc:
                    self._reply(400, {"ok": False, "error": str(exc)})
                except Exception as exc:  # pragma: no cover - belt
                    self._reply(500, {"ok": False, "error": str(exc)})

        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), _Handler
        )
        self._server.daemon_threads = True
        self._thread = Thread(
            target=self._server.serve_forever,
            name="repro-control",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop serving and release the port (idempotent)."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


def control_request(
    port: int,
    path: str,
    payload: dict | None = None,
    *,
    host: str = DEFAULT_HOST,
    timeout: float = 10.0,
) -> dict:
    """One control-plane round trip; GET when ``payload`` is None.

    Returns the decoded JSON body regardless of status (error bodies
    carry ``{"ok": false, "error"}``); raises ``OSError`` only when the
    daemon is unreachable.
    """
    connection = HTTPConnection(host, port, timeout=timeout)
    try:
        if payload is None:
            connection.request("GET", path)
        else:
            body = json.dumps(payload).encode()
            connection.request(
                "POST",
                path,
                body=body,
                headers={"Content-Type": "application/json"},
            )
        response = connection.getresponse()
        return json.loads(response.read() or b"{}")
    finally:
        connection.close()
