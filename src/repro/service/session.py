"""The session journal: a daemon's durable memory, crash to crash.

A sweep journal (:class:`~repro.exec.scheduler.SweepJournal`) records one
record shape -- completed shards -- because a sweep has one lifecycle
event.  A resident service has many: streams are *admitted* at runtime,
their *windows* complete one by one (fresh, stale-served, or shed),
degradation *transitions* fire, streams are *retired*, and operational
*events* (startup, drain, injected faults) punctuate everything.  The
session journal extends the sweep journal's crash-safety machinery --
atomic tmp+fsync+rename header, per-record fsync of file and directory,
torn-tail termination on resume -- to that multi-record stream.

The recovery contract: SIGKILL the daemon at any instant, restart it on
the same ``--out`` directory, and every admitted stream resumes from its
last *completed* window; completed windows are never recomputed and their
journaled records -- including the bit-exact encoded
:class:`~repro.core.results.RunResult` of every fresh window -- are
byte-identical to an uninterrupted session's.  To keep that byte-identity
honest, window records carry **no timing**: deadline slack, wall-clock
stamps, and queue depths live only in the control plane's transient
state, never in the journal.

Record kinds (one JSON line each, after the header):

- ``admit``    ``{stream, cell, policy, duration_s, window_s, windows}``
- ``window``   ``{stream, index, mode, digest, accuracy, frames, dropped
  [, result]}`` -- ``mode`` is ``fresh`` (computed; carries the encoded
  result), ``stale`` (served by the stale student; carries the accuracy
  it served), or ``shed`` (frames dropped; carries the drop count).
- ``snapshot`` ``{stream, index, state}`` -- the stream's newest
  run-state snapshot (incremental windows resume from it).  Journaled
  *before* the window record it belongs to, so a kill between the two
  leaves a snapshot the restart can still use.  Only the latest per
  stream is live; superseded snapshot records are pruned when their
  stale bytes pass the compaction threshold (the journal is rewritten
  atomically, all other records byte-preserved in order).
- ``cluster``  ``{cluster, state}`` -- a sharing cluster's newest
  weight state (see :mod:`repro.share.runtime`), journaled only when a
  sharing policy is active.  Like snapshots, only the latest per
  cluster id is live and superseded records are compacted away.
- ``degrade``  one ladder :class:`~repro.service.degrade.Transition`.
- ``retire``   ``{stream, reason}``.
- ``event``    ``{name, detail}`` -- operational punctuation.

The ``daemon-kill`` fault (:mod:`repro.exec.faults`) injects its
``os._exit`` *after* a window record is fully fsynced -- the hardest
instant for recovery, because the next startup must treat that window as
done and everything after it as never-happened.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError
from repro.exec import faults, protocol
from repro.exec.scheduler import _fsync_dir
from repro.service.degrade import Transition
from repro.service.pacing import window_count

__all__ = [
    "SESSION_VERSION",
    "SNAPSHOT_COMPACT_BYTES",
    "SessionJournal",
    "StreamLog",
    "session_fingerprint",
    "session_path",
]

#: Schema version of the session journal file.
SESSION_VERSION = 1

#: The window-record modes (documentation order = degradation order).
WINDOW_MODES = ("fresh", "stale", "shed")

#: Compaction threshold: once this many bytes of *superseded* snapshot
#: records have accumulated, the journal is rewritten without them.
SNAPSHOT_COMPACT_BYTES = 1 << 20


def session_path(out_dir: str | Path) -> Path:
    """Where a service run's session journal lives."""
    return Path(out_dir) / "session.jsonl"


def session_fingerprint(
    policy: str, window_s: float, sharing: str | None = None
) -> str:
    """Content fingerprint pinning a journal to its session parameters.

    Streams are admitted at runtime, so -- unlike a sweep journal, whose
    fingerprint covers the whole compiled plan -- only the parameters
    that would silently change the meaning of *every* record are pinned:
    the numeric policy (digests are policy-scoped), the window length
    (window indices are meaningless across a different split), and -- only
    when enabled -- the sharing policy (shared-path window results differ
    from independent ones, so the journals must never mix; the off-path
    fingerprint stays the historical byte string).
    """
    text = f"service|v{SESSION_VERSION}|{policy}|{window_s:g}"
    if sharing is not None:
        text += f"|sharing={sharing}"
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass
class StreamLog:
    """One admitted stream's reconstructed journal state.

    Attributes:
        key: The stream key (``cell_key`` of its grid cell).
        cell: The decoded grid cell.
        policy: Numeric policy name the stream runs under.
        duration_s: Total stream length (stream seconds).
        window_s: Window length (stream seconds).
        windows: Per-index window records (``mode``/``digest``/... as
            journaled); a window present here is *done* and must never be
            recomputed.
        transitions: Degradation transitions, in journal order.
        dropped_frames: Total frames shed across the stream's life.
        retired: Whether a retire record closed the stream.
        retire_reason: The retire record's reason, when retired.
        snapshot: The stream's newest journaled run-state snapshot
            payload (None until one is recorded).
        snapshot_index: The window index that snapshot belongs to.
    """

    key: str
    cell: object
    policy: str
    duration_s: float
    window_s: float
    windows: dict[int, dict] = field(default_factory=dict)
    transitions: list[dict] = field(default_factory=list)
    dropped_frames: int = 0
    retired: bool = False
    retire_reason: str | None = None
    snapshot: dict | None = None
    snapshot_index: int = -1

    @property
    def total_windows(self) -> int:
        """How many windows the stream decomposes into."""
        return window_count(self.duration_s, self.window_s)

    @property
    def next_window(self) -> int:
        """The lowest window index not yet journaled as done."""
        index = 0
        while index in self.windows:
            index += 1
        return index

    @property
    def complete(self) -> bool:
        """Every window journaled (the stream is ready to retire)."""
        return len(self.windows) >= self.total_windows


class SessionJournal:
    """Append-only multi-record session log (see the module docstring).

    Construction either creates a fresh journal (atomic header write) or,
    with ``resume=True`` on an existing file, reloads every record --
    tolerating exactly the torn final line a SIGKILL leaves -- and
    terminates the torn tail so later appends stand alone.  A fingerprint
    mismatch (different policy or window length) refuses with a typed
    :class:`~repro.errors.ConfigurationError` rather than silently mixing
    incompatible sessions.
    """

    def __init__(
        self,
        path: str | Path,
        fingerprint: str,
        *,
        resume: bool = False,
        compact_bytes: int | None = None,
    ) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.streams: dict[str, StreamLog] = {}
        self.clusters: dict[str, dict] = {}
        self.events: list[dict] = []
        self.resumed = False
        self.compact_bytes = (
            SNAPSHOT_COMPACT_BYTES if compact_bytes is None else compact_bytes
        )
        # Every parseable non-header record in journal order, plus the
        # byte bookkeeping that triggers snapshot compaction.
        self._records: list[dict] = []
        self._snapshot_bytes: dict[str, int] = {}
        self._stale_snapshot_bytes = 0
        if resume and self.path.exists():
            self._load()
            self.resumed = True
            # A kill mid-append leaves a torn final line with no newline;
            # terminate it now so the next append does not glue onto junk.
            with self.path.open("rb") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                torn_tail = False
                if size:
                    handle.seek(size - 1)
                    torn_tail = handle.read(1) != b"\n"
            if torn_tail:
                with self.path.open("a") as handle:
                    handle.write("\n")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            header = {
                "kind": "header",
                "version": SESSION_VERSION,
                "fingerprint": fingerprint,
            }
            tmp = self.path.with_name(self.path.name + ".tmp")
            with tmp.open("w") as handle:
                handle.write(json.dumps(header) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
            _fsync_dir(self.path.parent)

    # -- loading ------------------------------------------------------

    def _load(self) -> None:
        lines = self.path.read_text().splitlines()
        if not lines:
            raise ConfigurationError(
                f"session journal {self.path} is empty; remove it or "
                "point --out elsewhere"
            )
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            header = {}
        if (
            header.get("kind") != "header"
            or header.get("version") != SESSION_VERSION
        ):
            raise ConfigurationError(
                f"{self.path} is not a version-{SESSION_VERSION} session "
                "journal; remove it or point --out elsewhere"
            )
        if header.get("fingerprint") != self.fingerprint:
            raise ConfigurationError(
                f"session journal {self.path} belongs to a different "
                "session (numeric policy or window length changed); "
                "remove it or point --out elsewhere"
            )
        for line in lines[1:]:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # The torn trailing line a SIGKILL leaves: whatever it
                # described simply did not happen.
                continue
            self._records.append(record)
            self._replay(record)

    def _note_snapshot(self, record: dict) -> None:
        """Track live/stale snapshot bytes for the compaction trigger.

        Sizes are recomputed from a compact re-dump -- byte-identical to
        what :meth:`_append` wrote, since ``json`` round-trips key order,
        ints, and float reprs exactly.  Cluster-state records share the
        accounting under a namespaced key (cluster ids and stream keys
        live in different namespaces, so the sentinel prefix keeps them
        from colliding).
        """
        size = len(json.dumps(record, separators=(",", ":"))) + 1
        if record.get("kind") == "cluster":
            key = "\x00cluster\x00" + str(record.get("cluster", ""))
        else:
            key = record.get("stream", "")
        self._stale_snapshot_bytes += self._snapshot_bytes.get(key, 0)
        self._snapshot_bytes[key] = size

    def _replay(self, record: dict) -> None:
        kind = record.get("kind")
        if kind == "admit":
            cell = protocol.decode_cell(record["cell"])
            self.streams[record["stream"]] = StreamLog(
                key=record["stream"],
                cell=cell,
                policy=record["policy"],
                duration_s=float(record["duration_s"]),
                window_s=float(record["window_s"]),
            )
            return
        stream = self.streams.get(record.get("stream", ""))
        if kind == "window" and stream is not None:
            stream.windows[int(record["index"])] = record
            stream.dropped_frames += int(record.get("dropped", 0))
            return
        if kind == "snapshot" and stream is not None:
            # Journal order is supersession order: the last one wins.
            stream.snapshot = record.get("state")
            stream.snapshot_index = int(record.get("index", -1))
            self._note_snapshot(record)
            return
        if kind == "cluster":
            # Journal order is supersession order: the last one wins.
            self.clusters[str(record.get("cluster", ""))] = record.get(
                "state"
            )
            self._note_snapshot(record)
            return
        if kind == "degrade" and stream is not None:
            stream.transitions.append(record)
            return
        if kind == "retire" and stream is not None:
            stream.retired = True
            stream.retire_reason = record.get("reason")
            return
        if kind == "event":
            self.events.append(record)

    # -- appending ----------------------------------------------------

    def _append(self, record: dict) -> None:
        """One fsynced record (file and directory) before returning."""
        line = json.dumps(record, separators=(",", ":"))
        with self.path.open("a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        _fsync_dir(self.path.parent)
        self._records.append(record)

    def _compact(self) -> None:
        """Atomically rewrite the journal without superseded snapshots.

        Every non-snapshot record (and each stream's newest snapshot) is
        re-emitted byte-identically in journal order via the same
        tmp+fsync+rename dance the header uses, so a kill mid-compaction
        leaves either the old journal or the new one, never a mix.
        """
        last_snapshot: dict[str, int] = {}
        last_cluster: dict[str, int] = {}
        for position, record in enumerate(self._records):
            if record.get("kind") == "snapshot":
                last_snapshot[record.get("stream", "")] = position
            elif record.get("kind") == "cluster":
                last_cluster[record.get("cluster", "")] = position
        keep = []
        for position, record in enumerate(self._records):
            kind = record.get("kind")
            if kind == "snapshot":
                if last_snapshot.get(record.get("stream", "")) != position:
                    continue
            elif kind == "cluster":
                if last_cluster.get(record.get("cluster", "")) != position:
                    continue
            keep.append(record)
        header = {
            "kind": "header",
            "version": SESSION_VERSION,
            "fingerprint": self.fingerprint,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        with tmp.open("w") as handle:
            handle.write(json.dumps(header) + "\n")
            for record in keep:
                handle.write(
                    json.dumps(record, separators=(",", ":")) + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        _fsync_dir(self.path.parent)
        self._records = keep
        self._stale_snapshot_bytes = 0

    def record_admit(
        self, key: str, cell, policy: str, duration_s: float, window_s: float
    ) -> StreamLog:
        """Admit one stream; returns its (empty) log.

        Idempotent across sessions: a key already replayed from this
        journal returns its existing log -- completed windows must
        survive a re-admit, never be recomputed.
        """
        existing = self.streams.get(key)
        if existing is not None:
            return existing
        record = {
            "kind": "admit",
            "stream": key,
            "cell": protocol.encode_cell(cell),
            "policy": policy,
            "duration_s": float(duration_s),
            "window_s": float(window_s),
            "windows": window_count(duration_s, window_s),
        }
        self._append(record)
        log = StreamLog(
            key=key,
            cell=cell,
            policy=policy,
            duration_s=float(duration_s),
            window_s=float(window_s),
        )
        self.streams[key] = log
        return log

    def record_window(
        self,
        key: str,
        index: int,
        mode: str,
        *,
        digest: str | None = None,
        accuracy: float | None = None,
        frames: int = 0,
        dropped: int = 0,
        result: dict | None = None,
    ) -> dict:
        """Journal one completed window; the hardest record to lose.

        ``fresh`` windows carry the bit-exact encoded result (so a resume
        can reconstruct every completed window without recompute),
        ``stale`` windows the accuracy they served, ``shed`` windows the
        frames they dropped.  No timing fields, ever -- the record must be
        byte-identical between a paced run and an eager one.

        The ``daemon-kill`` fault fires *after* the fsync: the journal
        remembers the window, the process dies, and the restart must
        resume exactly one window further on.
        """
        if mode not in WINDOW_MODES:
            raise ConfigurationError(
                f"unknown window mode {mode!r}; known: "
                f"{', '.join(WINDOW_MODES)}"
            )
        record: dict = {
            "kind": "window",
            "stream": key,
            "index": int(index),
            "mode": mode,
        }
        if digest is not None:
            record["digest"] = digest
        if accuracy is not None:
            record["accuracy"] = float(accuracy)
        record["frames"] = int(frames)
        record["dropped"] = int(dropped)
        if result is not None:
            record["result"] = result
        self._append(record)
        stream = self.streams.get(key)
        if stream is not None:
            stream.windows[int(index)] = record
            stream.dropped_frames += int(dropped)
        faults.daemon_fault(f"{key}|w{index}")
        return record

    def record_snapshot(self, key: str, index: int, state: dict) -> None:
        """Journal a stream's newest run-state snapshot.

        Callers journal the snapshot *before* the window record it
        belongs to: a kill between the two then leaves window ``i``'s
        snapshot without its record, and the restart recomputes window
        ``i`` from that snapshot's predecessor -- correct either way, and
        never a window record whose snapshot was lost.

        Superseded snapshots stay in the file only until their stale
        bytes pass ``compact_bytes``; then the journal is rewritten
        without them (see :meth:`_compact`), so long-lived sessions don't
        grow linearly in snapshot payloads.
        """
        record = {
            "kind": "snapshot",
            "stream": key,
            "index": int(index),
            "state": state,
        }
        self._append(record)
        stream = self.streams.get(key)
        if stream is not None:
            stream.snapshot = state
            stream.snapshot_index = int(index)
        self._note_snapshot(record)
        if self._stale_snapshot_bytes > self.compact_bytes:
            self._compact()

    def record_cluster(self, cluster_id: str, state: dict) -> None:
        """Journal a sharing cluster's newest weight state.

        Journaled *after* the window record that produced it: losing the
        cluster record to a kill merely costs the next window some reuse
        (it recomputes from the previous cluster state), never a window
        record whose provenance is gone.  Superseded cluster records are
        compacted away alongside stale snapshots.
        """
        record = {
            "kind": "cluster",
            "cluster": str(cluster_id),
            "state": state,
        }
        self._append(record)
        self.clusters[str(cluster_id)] = state
        self._note_snapshot(record)
        if self._stale_snapshot_bytes > self.compact_bytes:
            self._compact()

    def record_degrade(self, transition: Transition) -> None:
        """Journal one degradation-ladder transition."""
        record = {"kind": "degrade", **transition.as_record()}
        self._append(record)
        stream = self.streams.get(transition.stream)
        if stream is not None:
            stream.transitions.append(record)

    def record_retire(self, key: str, reason: str) -> None:
        """Journal one stream leaving the pool."""
        self._append({"kind": "retire", "stream": key, "reason": reason})
        stream = self.streams.get(key)
        if stream is not None:
            stream.retired = True
            stream.retire_reason = reason

    def record_event(self, name: str, detail: dict | None = None) -> None:
        """Journal one operational event (startup, drain, shutdown...)."""
        record: dict = {"kind": "event", "name": name}
        if detail:
            record["detail"] = detail
        self._append(record)
        self.events.append(record)

    # -- queries ------------------------------------------------------

    def active_streams(self) -> list[StreamLog]:
        """Admitted, not-yet-retired streams (what a restart resumes)."""
        return [
            stream
            for stream in self.streams.values()
            if not stream.retired
        ]
