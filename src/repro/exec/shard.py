"""Shards: the unit of work every execution backend dispatches.

A *shard* is a group of grid cells sharing one materialized stream -- the
same decomposition :func:`plan_shards` has always produced for the process
pool -- plus the two pieces of parent context a worker cannot inherit
ambiently: the numeric policy name and the artifact-cache root.  Packaging
those into a :class:`ShardSpec` is what makes the unit transport-agnostic:
the same spec runs in-process (:class:`~repro.exec.backends.SerialBackend`),
in a forked pool worker, or JSON-encoded over a pipe to a
``python -m repro worker`` child on another host.

The cell dataclasses (:class:`SystemCell` / :class:`Fig2Cell`) and the
shard planner live here -- :mod:`repro.core.parallel` re-exports them for
compatibility -- because the execution subsystem must not import the
delegation layer that imports it.

Failure is typed: a worker death, a broken pool, or a protocol violation
surfaces as :class:`ShardFailure` naming the shard's cells, never as an
opaque ``BrokenProcessPool`` traceback.  Shard execution is deterministic
(every cell seeds its own RNGs), so retrying a failed shard on another
worker reproduces the original results bit-identically.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro import profiling
from repro.batching import active_batching, resolve_batching, use_batching
from repro.core.results import RunResult
from repro.core.snapshot import (
    decode_run_snapshot,
    encode_run_snapshot,
    stream_prefix_aligned,
)
from repro.core.system import RunExecution
from repro.exec import faults
from repro.core.runner import build_fig2_system, build_system, run_on_scenario
from repro.data.scenarios import build_scenario
from repro.errors import ConfigurationError, ExecutionError, SnapshotError
from repro.learn.student import make_student
from repro.learn.teacher import make_teacher
from repro.models.zoo import get_pair
from repro.numeric import active_policy, use_policy
from repro.share.cluster import cluster_cells
from repro.share.policy import active_sharing, resolve_sharing, use_sharing
from repro.share.runtime import (
    ClusterRuntime,
    decode_cluster_state,
    encode_cluster_state,
)

__all__ = [
    "FAULT_TOKEN_ENV",
    "Fig2Cell",
    "ShardFailure",
    "ShardQuarantined",
    "ShardResult",
    "ShardSpec",
    "SystemCell",
    "batch_signature",
    "cell_batch_key",
    "cell_key",
    "cell_label",
    "consume_fault_token",
    "execute_shard",
    "make_shard_specs",
    "note_shard_observation",
    "observed_cost",
    "plan_shards",
    "reset_observed_costs",
    "run_cell",
    "run_cell_incremental",
    "run_shard_cells",
    "run_spec_cells",
    "stream_signature",
    "warm_model_caches",
]

#: Fault-injection hook (tests, CI's kill-and-resume leg): when this
#: variable names an existing file, the next worker to *claim* it dies.
#: The general mechanism now lives in :mod:`repro.exec.faults`
#: (``REPRO_FAULT_PLAN``); this single-fault hook is kept verbatim.
FAULT_TOKEN_ENV = faults.FAULT_TOKEN_ENV


def consume_fault_token() -> None:
    """Die abruptly -- once, fleet-wide -- if the fault token is armed.

    Workers (pool and subprocess alike) call this before executing each
    shard.  Kept as a compatibility alias; the claim semantics (unlink =
    atomic, exactly-once) are documented in
    :func:`repro.exec.faults.consume_die_token`.
    """
    faults.consume_die_token()


@dataclass(frozen=True)
class SystemCell:
    """One grid cell: a Figure-9-style system on one scenario.

    Attributes:
        system: System name from :data:`repro.core.runner.SYSTEM_BUILDERS`.
        pair: Model-pair name.
        scenario: Scenario name (Table II).
        seed: Model-init and stream seed.
        duration_s: Stream length override (None = scenario default).
    """

    system: str
    pair: str
    scenario: str
    seed: int = 0
    duration_s: float | None = None


@dataclass(frozen=True)
class Fig2Cell:
    """One Figure-2 cell: frozen student/teacher or idealized Ekya on a GPU.

    Attributes:
        kind: ``"student"``, ``"teacher"``, or ``"ekya"``.
        platform: ``"RTX3090"``, ``"OrinHigh"``, or ``"OrinLow"``.
        pair: Model-pair name.
        scenario: Scenario name.
        seed: Stream seed (model init uses the builder default, matching
            the serial Figure 2 code).
        duration_s: Stream length override.
    """

    kind: str
    platform: str
    pair: str
    scenario: str
    seed: int = 0
    duration_s: float | None = None


CELL_TYPES = (SystemCell, Fig2Cell)


def run_cell(cell) -> RunResult:
    """Execute one cell (runs inside worker processes; must stay pickleable)."""
    if isinstance(cell, SystemCell):
        system = build_system(cell.system, cell.pair, seed=cell.seed)
    elif isinstance(cell, Fig2Cell):
        system = build_fig2_system(cell.kind, cell.platform, cell.pair)
    else:
        raise ConfigurationError(f"unknown grid cell type {type(cell)!r}")
    return run_on_scenario(
        system, cell.scenario, seed=cell.seed, duration_s=cell.duration_s
    )


def _build_cell_system(cell):
    if isinstance(cell, SystemCell):
        return build_system(cell.system, cell.pair, seed=cell.seed)
    if isinstance(cell, Fig2Cell):
        return build_fig2_system(cell.kind, cell.platform, cell.pair)
    raise ConfigurationError(f"unknown grid cell type {type(cell)!r}")


def run_cell_incremental(
    cell, snapshot: dict | None = None, emit_snapshot: bool = False
) -> tuple[RunResult, dict | None]:
    """Execute one cell, optionally resuming from / emitting a snapshot.

    The incremental-window primitive: with a compatible ``snapshot``
    (window ``i``'s encoded safe point), only the stream-seconds past the
    snapshot's clock are simulated; the result is bit-identical to
    :func:`run_cell` over the full prefix.  An *incompatible* snapshot --
    wrong version, policy, cell identity, or an origin not aligned to the
    stream's segment grid -- falls back to a full prefix run: slower,
    never wrong.

    With ``emit_snapshot``, the run's final safe point is returned encoded
    (None when the cell's duration is not segment-aligned, since such a
    prefix is not reproducible in a longer stream).
    """
    system = _build_cell_system(cell)
    if cell.duration_s is None:
        stream = build_scenario(cell.scenario)
    else:
        stream = build_scenario(cell.scenario, duration_s=cell.duration_s)
    policy = active_policy().name
    emit = emit_snapshot and stream_prefix_aligned(stream.duration_s)

    checkpoint = None
    if snapshot is not None:
        try:
            checkpoint = decode_run_snapshot(
                snapshot,
                policy=policy,
                system=system.name,
                scenario=stream.name,
                seed=cell.seed,
                duration_s=stream.duration_s,
            )
        except SnapshotError:
            checkpoint = None
    try:
        execution = RunExecution(
            system, stream, cell.seed, checkpoint=checkpoint, capture=emit
        )
    except SnapshotError:
        # A restore that fails partway may have touched the system's
        # weights/buffer; rebuild it fresh for the prefix fallback.
        system = _build_cell_system(cell)
        execution = RunExecution(system, stream, cell.seed, capture=emit)
    execution.run_to_end()
    result = execution.result()

    payload = None
    final = execution.checkpoint()
    if emit and final is not None:
        payload = encode_run_snapshot(
            final,
            policy=policy,
            system=system.name,
            scenario=stream.name,
            seed=cell.seed,
            origin_duration_s=stream.duration_s,
        )
    return result, payload


def cell_label(cell) -> str:
    """Compact human-readable cell identity (for failure messages)."""
    if isinstance(cell, Fig2Cell):
        name = f"{cell.platform}-{cell.kind}"
    else:
        name = cell.system
    duration = "def" if cell.duration_s is None else f"{cell.duration_s:g}s"
    return f"{name}/{cell.pair}/{cell.scenario}/s{cell.seed}/{duration}"


def cell_key(policy_name: str, cell) -> str:
    """The stable journal/dedup key of one (policy, cell) pair.

    Purely content-derived -- no worker count, shard split, or submission
    order leaks in -- so a resume journal written at ``--jobs 8`` matches
    the same sweep re-run at ``--jobs 1``.  Unlike the human-facing
    :func:`cell_label`, the duration is keyed at full precision
    (``float.hex``): two cells differing past 6 significant digits must
    never collide in a journal or plan fingerprint.
    """
    kind = "fig2" if isinstance(cell, Fig2Cell) else "system"
    duration = (
        "def" if cell.duration_s is None else float(cell.duration_s).hex()
    )
    return f"{policy_name}|{kind}|{cell_label(cell)}|{duration}"


def stream_signature(cell) -> tuple:
    """The (scenario, seed, duration) key identifying a cell's stream.

    Cells sharing a signature consume the same materialized stream, so the
    signature is both the sharding key here and the dedup/cost unit the
    sweep planner (:mod:`repro.sweep.plan`) reports before running a fleet.
    """
    return (cell.scenario, cell.seed, cell.duration_s)


def batch_signature(cell) -> tuple:
    """The geometry key deciding which cells may share a batch group.

    Cells with one signature run the same model pair (hence identical
    weight geometry and stacked-kernel compatibility), so the batched
    planner co-shards them and the lockstep conductor can stack their
    identically-shaped requests.  The signature deliberately ignores
    system, scenario, seed, and duration: grouping is purely a
    performance decision -- the conductor only ever stacks requests whose
    shapes actually agree, so a coarse group can never change results,
    only how often stacking engages.
    """
    if isinstance(cell, Fig2Cell):
        return ("fig2", cell.kind, cell.platform, cell.pair)
    return ("system", cell.pair)


def cell_batch_key(policy_name: str, cell) -> tuple:
    """A cell's full batch-compatibility key, including its policy.

    Cells under different numeric policies must never co-batch (their
    models carry different dtypes); the planner gets this for free --
    shards are planned per policy group -- but the service and tests use
    this key to make the exclusion explicit.
    """
    return (policy_name,) + batch_signature(cell)


# -- observed shard costs (the learned-scheduling seed) --------------------
#
# The scheduler reports each completed shard's wall time back here
# (:func:`note_shard_observation`); the planner's split loop then weighs
# shards by observed per-cell cost instead of cell count.  With no
# observations every cell weighs 1.0 and the split sequence is provably
# the historical one.  Per-process state, deliberately: each sweep's
# parent learns from its own completed shards.

_observed_costs: dict[str, float] = {}


def note_shard_observation(spec: "ShardSpec", wall_s: float | None) -> None:
    """Record a completed shard's wall seconds as per-cell cost weights."""
    if wall_s is None or wall_s <= 0.0 or not spec.cells:
        return
    per_cell = wall_s / len(spec.cells)
    for cell in spec.cells:
        _observed_costs[cell_key(spec.policy, cell)] = per_cell


def observed_cost(key: str) -> float:
    """The learned cost weight of one cell key (1.0 until observed)."""
    return _observed_costs.get(key, 1.0)


def reset_observed_costs() -> None:
    """Forget all observed costs (tests; a fresh sweep learns its own)."""
    _observed_costs.clear()


def _shard_weight(shard: list[tuple[int, object]]) -> float:
    policy = active_policy().name
    return sum(observed_cost(cell_key(policy, cell)) for _, cell in shard)


def plan_shards(
    cells: Sequence, jobs: int
) -> list[list[tuple[int, object]]]:
    """Group (index, cell) pairs into stream-sharing shards.

    Shards are split (largest first) until there is one per worker or
    nothing splittable remains, so small grids with few distinct streams
    still use every core.  Splits interleave (evens/odds) rather than
    halve: grids typically order cells cheap-systems-first within a
    scenario, and contiguous halves would put every expensive system in
    one worker.  Result order is restored from the carried indices, so
    the split pattern never affects output.

    This is exactly the decomposition every backend executes; it is
    public so planners can estimate materialization counts and worker
    balance without running anything.

    Under an enabled sharing policy (:func:`repro.share.active_sharing`)
    the decomposition changes shape: cells group by *cluster* instead of
    stream signature, and clusters are never split -- a cluster's cells
    must co-locate on one shard so label/weight reuse happens in-process.
    The grouping is a pure function of the cell set and the policy, so it
    is identical at every ``jobs`` count.

    Under an enabled batching policy (:func:`repro.batching.active_batching`)
    cells group by :func:`batch_signature` instead of stream signature, so
    geometry-compatible cells land on one shard and the lockstep conductor
    can stack their numpy work; with sharing *also* on, same-geometry
    clusters merge onto one shard (cluster granularity preserved) so
    whole clusters batch against each other.  Either way results are
    bit-identical -- grouping only decides how often stacking engages.

    The split loop weighs shards by observed per-cell cost
    (:func:`note_shard_observation`); unobserved cells weigh 1.0, making
    the default split sequence exactly the historical count-based one.
    """
    sharing = active_sharing()
    batching = active_batching()
    if sharing.enabled:
        assignment = cluster_cells(cells, sharing)
        clustered: dict[str, list[tuple[int, object]]] = {}
        for index, cell in enumerate(cells):
            clustered.setdefault(assignment.cluster_of(cell), []).append(
                (index, cell)
            )
        if not batching.enabled:
            return list(clustered.values())
        merged: dict[tuple, list[tuple[int, object]]] = {}
        for cluster in clustered.values():
            merged.setdefault(batch_signature(cluster[0][1]), []).extend(
                cluster
            )
        return list(merged.values())
    groups: dict[tuple, list[tuple[int, object]]] = {}
    for index, cell in enumerate(cells):
        if batching.enabled:
            groups.setdefault(batch_signature(cell), []).append(
                (index, cell)
            )
        else:
            groups.setdefault(stream_signature(cell), []).append(
                (index, cell)
            )
    shards = list(groups.values())
    target = min(jobs, len(cells))
    while len(shards) < target:
        splittable = [i for i in range(len(shards)) if len(shards[i]) > 1]
        if not splittable:
            break
        largest = max(splittable, key=lambda i: _shard_weight(shards[i]))
        shard = shards.pop(largest)
        shards.extend([shard[::2], shard[1::2]])
    return shards


def warm_model_caches(cells: Iterable) -> None:
    """Pretrain every distinct (pair, seed) once in this process.

    Forked workers inherit the warmed ``lru_cache`` entries for free;
    spawn workers, subprocess workers, and separate invocations hit the
    on-disk cache instead (see :mod:`repro.learn.cache`).  The MX-format
    arguments do not matter here -- pretrained weights are
    precision-independent -- so the default-format constructors suffice.
    """
    seen: set[tuple[str, int]] = set()
    for cell in cells:
        model_seed = cell.seed if isinstance(cell, SystemCell) else 0
        key = (cell.pair, model_seed)
        if key in seen:
            continue
        seen.add(key)
        pair = get_pair(cell.pair)
        make_student(pair.student, seed=model_seed)
        make_teacher(pair.teacher, seed=model_seed)


@dataclass(frozen=True)
class ShardSpec:
    """One dispatchable unit of work, carrying its own execution context.

    Attributes:
        key: Content-derived shard identity (hash over policy + cell
            keys); what failure messages and journals reference.
        cells: The cells to run, in order.
        indices: Each cell's position in the originating grid (restores
            submission order after unordered completion).
        policy: Numeric policy *name* -- explicit because contextvar
            overrides do not survive spawn-started or remote workers.
        profile: Whether the worker should profile its phases and ship
            the snapshot back for the parent to merge.
        cache_root: Artifact-cache root the worker should use, or None
            to let it fall back to its own default (remote hosts).
        snapshot: Encoded run-state snapshot to resume the cell from
            (incremental windows; requires a single-cell shard).  An
            incompatible snapshot degrades to a full prefix run.
        emit_snapshot: Ship the run's final safe point back on the
            result (incremental windows; requires a single-cell shard).
        sharing: Sharing policy *name* -- explicit for the same reason
            ``policy`` is.  ``"off"`` (the default) is the bit-identical
            independent path.
        cluster_state: Encoded cluster weight state to seed the shard's
            runtime from (service windows resuming a cluster's journaled
            learning; requires a single-cell shard).
        emit_cluster_state: Ship the shard's final cluster state back on
            the result (requires a single-cell shard).
        batch: Batching policy *name* -- explicit for the same reason
            ``policy`` is.  ``"off"`` (the default) is the bit-identical
            per-cell path.
        snapshots: Per-cell resume snapshots for a *batched* multi-cell
            shard (the service coalescing K co-windowed streams into one
            shard); aligned with ``cells``, entries may be None.
        emit_snapshots: Per-cell emit flags matching ``snapshots``.
    """

    key: str
    cells: tuple
    indices: tuple[int, ...]
    policy: str
    profile: bool = False
    cache_root: str | None = None
    snapshot: dict | None = None
    emit_snapshot: bool = False
    sharing: str = "off"
    cluster_state: dict | None = None
    emit_cluster_state: bool = False
    batch: str = "off"
    snapshots: tuple | None = None
    emit_snapshots: tuple | None = None


@dataclass(frozen=True)
class ShardResult:
    """A completed shard: per-cell results, profile, and run snapshot.

    ``snapshots`` carries per-cell final snapshots for batched multi-cell
    service shards (aligned with the spec's cells); ``wall_s`` is the
    worker-observed execution wall time, which the scheduler feeds back
    into the planner's cost weights.
    """

    key: str
    results: tuple
    profile: dict | None = None
    snapshot: dict | None = None
    cluster_state: dict | None = None
    snapshots: tuple | None = None
    wall_s: float | None = None


class ShardFailure(ExecutionError):
    """A shard did not complete: worker death, broken pool, bad protocol.

    Raised (after the scheduler's bounded retries) instead of the opaque
    ``BrokenProcessPool``/``EOFError`` the transports produce, and always
    names the cells whose results are missing.

    Attributes:
        shard_key: The failing shard's :attr:`ShardSpec.key`.
        cells: Labels of the cells the shard was carrying.
        worker: Identity of the worker observed failing, if known.
        attempts: How many times the shard was attempted.
        cause: One-line description of the underlying error.
        retriable: Whether another attempt could plausibly succeed.
            Transport faults (worker death, broken pool, protocol
            violations) are; a *cell* raising inside a healthy worker is
            deterministic and is not -- the scheduler surfaces it
            immediately instead of recomputing the same exception.
        cause_exception: The original exception object, when the failure
            happened in-process (the pool transport); the scheduler
            re-raises it so callers see the same exception type at any
            worker count.  Remote transports cannot ship the object, so
            there the typed failure itself (carrying ``cause``) is what
            surfaces.
    """

    def __init__(
        self,
        message: str,
        *,
        shard_key: str = "",
        cells: tuple[str, ...] = (),
        worker: str | None = None,
        attempts: int = 1,
        cause: str | None = None,
        retriable: bool = True,
        cause_exception: BaseException | None = None,
    ) -> None:
        detail = message
        if cells:
            detail += f" [cells: {', '.join(cells)}]"
        if worker:
            detail += f" [worker: {worker}]"
        if attempts > 1:
            detail += f" [attempts: {attempts}]"
        if cause:
            detail += f" [cause: {cause}]"
        super().__init__(detail)
        self.message = message
        self.shard_key = shard_key
        self.cells = cells
        self.worker = worker
        self.attempts = attempts
        self.cause = cause
        self.retriable = retriable
        self.cause_exception = cause_exception

    def with_attempts(self, attempts: int) -> "ShardFailure":
        """A copy reporting the scheduler's final attempt count."""
        return ShardFailure(
            self.message,
            shard_key=self.shard_key,
            cells=self.cells,
            worker=self.worker,
            attempts=attempts,
            cause=self.cause,
            retriable=self.retriable,
            cause_exception=self.cause_exception,
        )


class ShardQuarantined(ShardFailure):
    """A poison shard: it killed enough distinct workers to be quarantined.

    Raised by the :class:`~repro.exec.scheduler.Scheduler` when one shard
    is observed taking down ``quarantine_after`` different workers --
    the signature of an input that reliably destroys whatever executes
    it (a segfaulting corner case, an OOM-sized cell), as opposed to
    workers that happen to be flaky.  Retrying poison converts one bad
    shard into a dead fleet, so the failure is non-retriable by
    construction and names the cells (and the workers taken down) so the
    operator can reproduce the kill in isolation.
    """

    def __init__(self, message: str, **kwargs) -> None:
        kwargs["retriable"] = False
        super().__init__(message, **kwargs)


def shard_key(policy_name: str, cells: Sequence) -> str:
    """Content hash identifying a shard across processes and runs."""
    hasher = hashlib.sha256()
    for cell in cells:
        hasher.update(cell_key(policy_name, cell).encode())
        hasher.update(b"\n")
    return hasher.hexdigest()[:16]


def make_shard_specs(
    cells: Sequence,
    jobs: int,
    policy_name: str,
    *,
    profile: bool = False,
    cache_root: str | None = None,
    sharing: str | None = None,
    batch: str | None = None,
) -> list[ShardSpec]:
    """Plan ``cells`` into :class:`ShardSpec`\\ s for ``jobs`` workers.

    ``sharing`` and ``batch`` default to the ambient policies' names so
    specs carry them explicitly to spawn-started and remote workers,
    exactly like the numeric policy.
    """
    if sharing is None:
        sharing = active_sharing().name
    if batch is None:
        batch = active_batching().name
    specs = []
    for shard in plan_shards(cells, jobs):
        shard_cells = tuple(cell for _, cell in shard)
        specs.append(
            ShardSpec(
                key=shard_key(policy_name, shard_cells),
                cells=shard_cells,
                indices=tuple(index for index, _ in shard),
                policy=policy_name,
                profile=profile,
                cache_root=cache_root,
                sharing=sharing,
                batch=batch,
            )
        )
    return specs


def run_shard_cells(
    cells: Sequence, policy_name: str, profile: bool
) -> tuple[list[RunResult], dict | None]:
    """Execute a shard's cells in order (the worker-side entry point).

    The numeric policy is re-installed explicitly -- a ``use_policy``
    override in the parent is a contextvar and would not survive a
    spawn-started or remote worker -- so shard results are policy-correct
    on any transport.  The first cell materializes (or memmap-opens) the
    shard's stream; the rest hit the artifact store's in-process LRU.
    When ``profile`` is set, the shard runs under its own profiler and
    returns the snapshot alongside the results so the parent can
    aggregate worker phase times (``--profile`` composing with any
    multi-process backend).
    """
    with use_policy(policy_name):
        if not profile:
            return [run_cell(cell) for cell in cells], None
        profiler = profiling.enable()
        try:
            results = [run_cell(cell) for cell in cells]
            return results, profiler.snapshot()
        finally:
            profiling.disable()


def _run_cells_shared(
    spec: ShardSpec, sharing
) -> tuple[list[RunResult], dict | None, dict | None]:
    """Execute a sharing-enabled spec's cells through cluster runtimes.

    Sweep shards carry a whole cluster (the planner co-locates them) and
    run its cells sequentially through one in-process runtime -- labels,
    warm starts, and deltas all shared.  Service shards carry one window
    cell plus the cluster's journaled weight state (``spec.cluster_state``)
    and ship the updated state back on the result.

    With batching also enabled and several clusters on the shard, each
    cluster becomes one lockstep *lane*: its cells still run sequentially
    through their own runtime (preserving the sharing digests' ordering),
    while the clusters' numpy work batches against each other.
    """
    incremental = spec.snapshot is not None or spec.emit_snapshot
    stateful = spec.cluster_state is not None or spec.emit_cluster_state
    if (incremental or stateful) and len(spec.cells) != 1:
        raise ConfigurationError(
            f"incremental shard {spec.key} carries {len(spec.cells)} "
            f"cells; snapshots resume exactly one"
        )
    assignment = cluster_cells(spec.cells, sharing)
    runtimes: dict[str, ClusterRuntime] = {}
    if spec.cluster_state is not None:
        cid = assignment.cluster_of(spec.cells[0])
        runtimes[cid] = decode_cluster_state(spec.cluster_state, sharing)

    clustered: dict[str, list[tuple[int, object]]] = {}
    for position, cell in enumerate(spec.cells):
        clustered.setdefault(assignment.cluster_of(cell), []).append(
            (position, cell)
        )
    batching = resolve_batching(spec.batch)
    if batching.enabled and len(clustered) > 1 and not (
        incremental or stateful
    ):
        from repro.exec.batched import run_lane_jobs

        warm_model_caches(spec.cells)
        for cid in clustered:
            if cid not in runtimes:
                runtimes[cid] = ClusterRuntime(sharing, cid)

        def cluster_job(cid: str, members: list[tuple[int, object]]):
            runtime = runtimes[cid]
            out = []
            for position, cell in members:
                with runtime.activate(cell):
                    out.append((position, run_cell(cell)))
            return out

        lane_results = run_lane_jobs(
            [
                (lambda cid=cid, members=members: cluster_job(cid, members))
                for cid, members in clustered.items()
            ]
        )
        results = [None] * len(spec.cells)
        for lane in lane_results:
            for position, result in lane:
                results[position] = result
        return results, None, None

    results = []
    run_snapshot: dict | None = None
    for cell in spec.cells:
        cid = assignment.cluster_of(cell)
        runtime = runtimes.get(cid)
        if runtime is None:
            runtime = runtimes[cid] = ClusterRuntime(sharing, cid)
        with runtime.activate(cell):
            if incremental:
                result, run_snapshot = run_cell_incremental(
                    cell, spec.snapshot, spec.emit_snapshot
                )
            else:
                result = run_cell(cell)
        results.append(result)
    cluster_state = None
    if stateful:
        only = runtimes[assignment.cluster_of(spec.cells[0])]
        cluster_state = encode_cluster_state(only)
    return results, run_snapshot, cluster_state


def run_spec_cells(
    spec: ShardSpec,
) -> tuple[list[RunResult], dict | None, dict | None, dict | None]:
    """Execute a spec's cells under the ambient policy/profiler.

    Returns ``(results, run_snapshot, snapshots, cluster_state)`` --
    ``run_snapshot`` for the single-cell incremental contract,
    ``snapshots`` (per-cell, aligned with ``spec.cells``) for batched
    multi-cell service shards.  Incremental specs (a resume snapshot
    and/or ``emit_snapshot``) must carry exactly one cell -- a snapshot
    names one run's state -- unless batching supplies the per-cell
    ``spec.snapshots``/``spec.emit_snapshots`` carriers.  Sharing-enabled
    specs route through per-cluster runtimes; the default off-path below
    is byte-for-byte the historical independent execution.
    """
    sharing = resolve_sharing(spec.sharing)
    if sharing.enabled:
        results, run_snapshot, cluster_state = _run_cells_shared(
            spec, sharing
        )
        return results, run_snapshot, None, cluster_state
    batching = resolve_batching(spec.batch)
    if batching.enabled and len(spec.cells) > 1:
        from repro.exec.batched import run_cells_batched

        pairs = run_cells_batched(
            spec.cells,
            snapshots=spec.snapshots,
            emit_snapshots=spec.emit_snapshots,
        )
        results = [result for result, _ in pairs]
        if spec.snapshots is None and spec.emit_snapshots is None:
            return results, None, None, None
        return results, None, tuple(snap for _, snap in pairs), None
    if spec.snapshot is not None or spec.emit_snapshot:
        if len(spec.cells) != 1:
            raise ConfigurationError(
                f"incremental shard {spec.key} carries {len(spec.cells)} "
                f"cells; snapshots resume exactly one"
            )
        result, snapshot = run_cell_incremental(
            spec.cells[0], spec.snapshot, spec.emit_snapshot
        )
        return [result], snapshot, None, None
    return [run_cell(cell) for cell in spec.cells], None, None, None


def execute_shard(
    spec: ShardSpec,
) -> tuple[
    list[RunResult], dict | None, dict | None, tuple | None, dict | None
]:
    """The worker-side entry point for one spec, on any transport.

    Installs the spec's numeric, sharing, and batching policies, runs its
    cells (honouring the incremental snapshot and cluster-state fields),
    and profiles when asked.  Returns ``(results, profile_snapshot,
    run_snapshot, snapshots, cluster_state)``.
    """
    with use_policy(spec.policy), use_sharing(spec.sharing), use_batching(
        spec.batch
    ):
        if not spec.profile:
            results, run_snapshot, snapshots, cluster_state = (
                run_spec_cells(spec)
            )
            return results, None, run_snapshot, snapshots, cluster_state
        profiler = profiling.enable()
        try:
            results, run_snapshot, snapshots, cluster_state = (
                run_spec_cells(spec)
            )
            return (
                results,
                profiler.snapshot(),
                run_snapshot,
                snapshots,
                cluster_state,
            )
        finally:
            profiling.disable()
