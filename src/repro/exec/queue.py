"""Pull-model dispatch: a file-system job queue with leases and heartbeats.

The push-model transports (:mod:`repro.exec.backends`) *hand* shards to
workers they own, and learn of death by pipe-EOF.  That shape cannot
outlive the parent's process tree: a worker the parent did not spawn
cannot be handed anything, and a worker SIGKILLed along with its pipe can
take the whole dispatch down with it.  This module inverts control --
shards become claimable *messages*, and workers come to the queue:

- **Enqueue.**  :class:`QueueBackend` posts each
  :class:`~repro.exec.shard.ShardSpec` as a store-and-forward message
  file (the bit-exact JSON-lines encoding of :mod:`repro.exec.protocol`)
  under ``<queue>/pending/``.
- **Claim.**  A worker (``python -m repro worker --queue DIR``) claims a
  message by atomically renaming it into its per-worker lease directory
  ``<queue>/leases/<worker>/`` -- the filesystem guarantees exactly one
  winner, with no coordinator in the loop.
- **Heartbeat.**  While executing, the worker touches the lease file's
  mtime every quarter-TTL.  *Liveness is the lease*, not a pipe: a
  SIGKILLed, OOMed, or wedged worker simply stops beating.
- **Reclaim.**  The backend watches lease mtimes; one older than the TTL
  (``$REPRO_LEASE_TTL``, default :data:`DEFAULT_LEASE_TTL_S`) is
  reclaimed -- the lease is revoked and the shard reported as a typed,
  retriable failure, which the scheduler re-enqueues on its backoff
  schedule and the dead worker's id joins the excluded set (banned via a
  marker file that live workers check before every claim).  A lease held
  by a worker this backend *spawned* reclaims as soon as that process
  exits -- the TTL only gates workers whose liveness the parent cannot
  observe directly.
- **Post.**  A finished worker writes ``result``/``error`` back as a
  message file under ``<queue>/results/`` (atomic rename again), checks
  its lease still exists -- a reclaimed shard belongs to someone else --
  and removes the lease.

Workers are fungible and *attachable*: the backend spawns local ones by
default, but any process that can reach the queue directory (shared FS,
``ssh``-mounted, a k8s indexed Job with one ``--queue`` pod per index)
can pull work -- start extras mid-sweep and they simply begin claiming.
``--drain`` exits when the queue is empty, the natural shape for batch
pods.  Results are bit-identical to every other backend: the queue moves
the same encoded messages the stdio protocol does, and cells seed their
own RNGs.
"""

from __future__ import annotations

import os
import re
import shutil
import subprocess
import tempfile
import threading
import time
import traceback
from pathlib import Path
from typing import Sequence

from repro.cache import CACHE_ENV
from repro.errors import ConfigurationError, ProtocolError
from repro.exec import faults, protocol
from repro.exec.shard import (
    ShardFailure,
    ShardSpec,
    cell_label,
    execute_shard,
)

__all__ = [
    "DEFAULT_LEASE_TTL_S",
    "DEFAULT_POLL_S",
    "LEASE_TTL_ENV",
    "POLL_ENV",
    "QueueBackend",
    "QueueLayout",
    "queue_worker_main",
]

#: Environment variable setting the lease TTL in seconds: how long a
#: claimed shard's heartbeat may go stale before the lease is reclaimed
#: and the shard re-enqueued.  The knob trades detection latency against
#: tolerance for stop-the-world pauses on worker hosts.
LEASE_TTL_ENV = "REPRO_LEASE_TTL"

#: Environment variable setting the queue poll interval in seconds
#: (workers polling for messages, the backend polling for results).
POLL_ENV = "REPRO_QUEUE_POLL"

DEFAULT_LEASE_TTL_S = 30.0
DEFAULT_POLL_S = 0.05

#: Environment variable naming the pid a spawned worker must not
#: outlive.  The backend sets it on local spawns; when that process is
#: gone the worker exits at its next claim instead of polling a dead
#: parent's queue forever (the orphan would also hold any inherited
#: pipes open, wedging whatever supervises the parent).  Externally
#: attached workers never see the variable and keep their independent
#: lifetime.
PARENT_PID_ENV = "REPRO_QUEUE_PARENT"

#: Version stamp inside ``config.json`` (the queue's on-disk contract).
QUEUE_LAYOUT_VERSION = 1

#: Worker ids embed the worker's pid (``q<pid>-<nonce>``) so a backend
#: that *spawned* the lease holder can notice its exit immediately
#: instead of waiting out the heartbeat TTL.
_WORKER_PID_RE = re.compile(r"^q(\d+)-")


def _float_env(name: str) -> float | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be a positive number of seconds, got {raw!r}"
        )
    if value <= 0:
        raise ConfigurationError(
            f"{name} must be a positive number of seconds, got {raw!r}"
        )
    return value


class QueueLayout:
    """The on-disk shape of one queue directory.

    ``pending/`` holds claimable shard messages, ``leases/<worker>/``
    holds each worker's claims (mtime = last heartbeat), ``results/``
    holds posted replies, ``banned/`` holds retirement markers for
    excluded workers, and ``stop`` tells idle workers to exit.
    ``config.json`` records the timing contract so externally-attached
    workers agree with the backend without sharing an environment.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.pending = self.root / "pending"
        self.leases = self.root / "leases"
        self.results = self.root / "results"
        self.banned = self.root / "banned"
        self.stop_marker = self.root / "stop"
        self.config_path = self.root / "config.json"

    def create(
        self, lease_ttl_s: float, poll_s: float
    ) -> "QueueLayout":
        for directory in (
            self.pending, self.leases, self.results, self.banned
        ):
            directory.mkdir(parents=True, exist_ok=True)
        # A stop marker left by a previous backend on the same directory
        # (a resumed service session reuses its queue dir) must not
        # retire this backend's freshly spawned workers on arrival.
        self.stop_marker.unlink(missing_ok=True)
        protocol.write_message_file(
            self.config_path,
            {
                "v": protocol.PROTOCOL_VERSION,
                "kind": "config",
                "layout": QUEUE_LAYOUT_VERSION,
                "lease_ttl_s": lease_ttl_s,
                "poll_s": poll_s,
            },
        )
        return self

    def read_config(self) -> dict:
        try:
            message = protocol.read_message_file(self.config_path)
        except ProtocolError:
            message = None
        return message or {}

    def message_name(self, key: str) -> str:
        return f"{key}.json"

    def lease_of(self, key: str) -> tuple[Path, str] | None:
        """The live lease file for ``key`` and its worker id, if claimed."""
        name = self.message_name(key)
        try:
            workers = list(self.leases.iterdir())
        except FileNotFoundError:
            return None
        for worker_dir in workers:
            candidate = worker_dir / name
            if candidate.exists():
                return candidate, worker_dir.name
        return None


class _Heartbeat:
    """Touches a lease file's mtime on an interval until stopped.

    A heartbeat thread that dies while its worker keeps computing is the
    *phantom hang*: the lease goes stale, the backend reclaims and
    retries the shard, and the worker's (eventually posted) result races
    the retry's -- all because a bookkeeping thread failed silently.  Any
    unexpected exception in the beat loop therefore sets :attr:`failed`,
    which the worker checks after the shard and converts into an
    explicit *retriable* error reply instead of posting a result whose
    lease it could not keep alive.  A vanished lease file is the one
    expected exit: the claim was reclaimed from under us, and the
    post-time ``lease.exists()`` check already handles that race.
    """

    def __init__(self, lease: Path, interval_s: float) -> None:
        self.lease = lease
        self.interval_s = interval_s
        self.failed = False
        self.error: str | None = None
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._beat, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def _beat(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                os.utime(self.lease)
            except FileNotFoundError:
                # Lease reclaimed from under us: nothing left to renew.
                return
            except Exception as exc:
                self.failed = True
                self.error = f"{type(exc).__name__}: {exc}"
                return

    def stop(self) -> None:
        self._stop.set()


def queue_worker_main(
    queue_dir: str | Path, *, drain: bool = False
) -> int:
    """The pull-model worker loop: claim, heartbeat, execute, post.

    Runs until the queue's ``stop`` marker appears (and the queue is
    empty), this worker is banned, the spawning backend's process
    (``$REPRO_QUEUE_PARENT``, set on local spawns only) is gone, or --
    with ``drain`` -- the queue has no pending work.  Any process that can reach the directory may run
    this; the backend's own local workers and an operator's
    ``python -m repro worker --queue DIR`` on another host are identical.

    SIGTERM/SIGINT shut down gracefully: a lease currently held is
    *released* -- renamed back into ``pending/`` so the next worker
    claims it immediately instead of waiting out the heartbeat TTL --
    and the worker exits 0.
    """
    from repro.exec.worker import GracefulShutdown, install_graceful_shutdown

    install_graceful_shutdown()
    layout = QueueLayout(queue_dir)
    if not layout.pending.is_dir():
        raise ConfigurationError(
            f"{queue_dir} is not a queue directory (no pending/); "
            "the sweep's backend creates it, or create one by running "
            "the sweep with --backend queue"
        )
    config = layout.read_config()
    lease_ttl_s = (
        _float_env(LEASE_TTL_ENV)
        or config.get("lease_ttl_s")
        or DEFAULT_LEASE_TTL_S
    )
    poll_s = (
        _float_env(POLL_ENV) or config.get("poll_s") or DEFAULT_POLL_S
    )
    parent_pid: int | None = None
    raw_parent = os.environ.get(PARENT_PID_ENV, "").strip()
    if raw_parent:
        try:
            parent_pid = int(raw_parent)
        except ValueError:
            parent_pid = None

    def orphaned() -> bool:
        if parent_pid is None:
            return False
        if os.getppid() == parent_pid:
            return False
        try:
            os.kill(parent_pid, 0)
        except OSError:
            return True
        return False

    worker_id = f"q{os.getpid()}-{os.urandom(2).hex()}"
    lease_dir = layout.leases / worker_id
    lease_dir.mkdir(parents=True, exist_ok=True)
    ban_marker = layout.banned / worker_id
    heartbeat_s = max(lease_ttl_s / 4.0, 0.02)
    # Shards pin the cache root per-payload; remember this worker's own
    # baseline so a cache_root-less shard falls back to it rather than
    # inheriting whatever the previous shard pinned.
    baseline_cache_root = os.environ.get(CACHE_ENV)

    def claim() -> Path | None:
        try:
            names = sorted(os.listdir(layout.pending))
        except FileNotFoundError:
            return None
        for name in names:
            if not name.endswith(".json"):
                continue
            target = lease_dir / name
            try:
                os.rename(layout.pending / name, target)
            except OSError:
                continue  # another worker won the rename
            # rename preserves the pending file's mtime; the lease clock
            # starts *now*, not at enqueue time.
            os.utime(target)
            return target
        return None

    lease: Path | None = None
    heartbeat: _Heartbeat | None = None
    try:
        while True:
            if ban_marker.exists():
                return 0  # retired by the scheduler's exclusion
            if orphaned():
                return 0  # spawner died; do not outlive its tree
            lease = claim()
            if lease is None:
                if layout.stop_marker.exists() or drain:
                    return 0
                time.sleep(poll_s)
                continue
            key = lease.name[: -len(".json")]
            try:
                message = protocol.read_message_file(lease)
            except ProtocolError as exc:
                message = None
                reply = {
                    "v": protocol.PROTOCOL_VERSION,
                    "kind": "error",
                    "id": key,
                    "error": f"undecodable queue message: {exc}",
                    "traceback": None,
                    "worker": worker_id,
                }
            if message is not None:
                # Fault-injection sits exactly where real failures
                # strike: after the claim, before the first heartbeat.
                # A die-once exits here; a hang sleeps here with no
                # heartbeat ever sent -- both leave a lease whose mtime
                # is the claim instant, which is what the TTL reclaim
                # must absorb.
                faults.on_claim(key)
                heartbeat = _Heartbeat(lease, heartbeat_s)
                heartbeat.start()
                try:
                    spec = protocol.decode_shard_spec(message)
                    if spec.cache_root is not None:
                        os.environ[CACHE_ENV] = spec.cache_root
                    elif baseline_cache_root is not None:
                        os.environ[CACHE_ENV] = baseline_cache_root
                    else:
                        os.environ.pop(CACHE_ENV, None)
                    started = time.perf_counter()
                    (
                        results,
                        profile_snapshot,
                        run_snapshot,
                        snapshots,
                        cluster_state,
                    ) = execute_shard(spec)
                    wall_s = time.perf_counter() - started
                    reply = protocol.encode_shard_result(
                        key, results, profile_snapshot, run_snapshot,
                        cluster_state=cluster_state, snapshots=snapshots,
                        wall_s=wall_s,
                    )
                    reply["worker"] = worker_id
                    mode = faults.reply_fault(key)
                    if mode is not None:
                        reply = faults.corrupt_reply(reply, mode)
                except Exception as exc:
                    reply = {
                        "v": protocol.PROTOCOL_VERSION,
                        "kind": "error",
                        "id": key,
                        "error": f"{type(exc).__name__}: {exc}",
                        "traceback": traceback.format_exc(),
                        "worker": worker_id,
                    }
                finally:
                    heartbeat.stop()
                if heartbeat.failed:
                    # The beat loop died while we computed: the lease may
                    # have gone stale and been reclaimed at any point, so
                    # the result cannot be trusted as exclusively ours.
                    # Report a *retriable* failure instead of a result --
                    # the explicit version of what would otherwise be a
                    # phantom hang.
                    reply = {
                        "v": protocol.PROTOCOL_VERSION,
                        "kind": "error",
                        "id": key,
                        "error": (
                            "lease heartbeat thread failed mid-shard: "
                            f"{heartbeat.error}"
                        ),
                        "traceback": None,
                        "worker": worker_id,
                        "retriable": True,
                    }
                heartbeat = None
            if lease.exists():
                # Still ours: post the reply, then release the claim.  If
                # the lease was reclaimed while we ran (we were presumed
                # dead), the shard belongs to another worker now --
                # posting a late result would race the rightful owner's,
                # so discard ours.
                protocol.write_message_file(
                    layout.results / layout.message_name(key), reply
                )
                try:
                    lease.unlink()
                except OSError:
                    pass
            lease = None
    except GracefulShutdown:
        if heartbeat is not None:
            heartbeat.stop()
        if lease is not None and lease.exists():
            # Release, don't abandon: back into pending/ so the next
            # worker claims it now instead of after a TTL expiry.
            try:
                os.rename(lease, layout.pending / lease.name)
            except OSError:
                pass
        return 0


class QueueBackend:
    """Dispatch shards through a file-system queue of claimable messages.

    Args:
        workers: Local worker processes to keep alive (the *floor*;
            externally-attached workers add to it).
        directory: Queue directory.  None creates a private temp queue
            removed on :meth:`close`; point it somewhere shared (and
            durable) to attach external workers or inspect the queue.
        command: Worker launch command override (defaults to
            ``python -m repro worker``; ``$REPRO_WORKER_CMD`` also
            applies, so ``ssh host python -m repro worker`` works when
            the queue directory is a shared filesystem).
        lease_ttl_s: Heartbeat staleness bound before a lease is
            reclaimed (``$REPRO_LEASE_TTL``, else
            :data:`DEFAULT_LEASE_TTL_S`).
        poll_s: Result/lease polling interval.
        shard_timeout_s: Optional bound on one shard's *total* claim
            time, heartbeats or not (``$REPRO_SHARD_TIMEOUT``) -- catches
            the pathological worker that beats forever without finishing.
        max_respawns: Replacement-worker budget beyond the initial
            ``workers`` spawns (None = ``workers + 4``).
        spawn: False attaches to an existing fleet without spawning any
            local workers (the backend then only enqueues and collects).
    """

    name = "queue"

    def __init__(
        self,
        workers: int,
        directory: str | Path | None = None,
        command: list[str] | None = None,
        lease_ttl_s: float | None = None,
        poll_s: float | None = None,
        shard_timeout_s: float | None = None,
        max_respawns: int | None = None,
        spawn: bool = True,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"queue backend needs >= 1 worker, got {workers}"
            )
        self.workers = workers
        self.command = list(command) if command else None
        self.lease_ttl_s = (
            lease_ttl_s
            if lease_ttl_s is not None
            else _float_env(LEASE_TTL_ENV) or DEFAULT_LEASE_TTL_S
        )
        self.poll_s = (
            poll_s if poll_s is not None
            else _float_env(POLL_ENV) or DEFAULT_POLL_S
        )
        if shard_timeout_s is not None:
            self.shard_timeout_s = shard_timeout_s
        else:
            from repro.exec.backends import _shard_timeout_from_env

            self.shard_timeout_s = _shard_timeout_from_env()
        self.max_respawns = (
            max_respawns if max_respawns is not None else workers + 4
        )
        self.spawn = spawn
        self._owns_directory = directory is None
        if directory is None:
            directory = tempfile.mkdtemp(prefix="repro-queue-")
        self.layout = QueueLayout(directory).create(
            self.lease_ttl_s, self.poll_s
        )
        self._procs: list[subprocess.Popen] = []
        #: Every process this backend ever spawned, by pid -- consulted
        #: (not pruned) so a dead holder's lease reclaims immediately.
        self._pids: dict[int, subprocess.Popen] = {}
        self._spawned = 0
        self._closed = False

    # -- local worker management ------------------------------------

    def _worker_command(self) -> list[str]:
        from repro.exec.backends import default_worker_command

        base = self.command or default_worker_command()
        return base + ["--queue", str(self.layout.root)]

    def _maintain_workers(self) -> None:
        """Keep the local fleet at strength, within the respawn budget."""
        if not self.spawn:
            return
        self._procs = [p for p in self._procs if p.poll() is None]
        from repro.exec.backends import _worker_env

        while (
            len(self._procs) < self.workers
            and self._spawned < self.workers + self.max_respawns
        ):
            self._spawned += 1
            env = _worker_env()
            env[PARENT_PID_ENV] = str(os.getpid())
            try:
                proc = subprocess.Popen(self._worker_command(), env=env)
            except OSError:
                break
            self._procs.append(proc)
            self._pids[proc.pid] = proc

    def _holder_is_dead(self, lease_worker: str) -> bool:
        """True when the lease holder is a *local spawn* that has exited.

        Worker ids embed the worker's pid; when it names a process this
        backend spawned and that process has exited, the lease can never
        beat again -- reclaim it now rather than waiting out the TTL.
        Unknown pids (externally attached workers, remote-launch
        wrappers) always return False and age out via the TTL instead.
        """
        match = _WORKER_PID_RE.match(lease_worker)
        if match is None:
            return False
        proc = self._pids.get(int(match.group(1)))
        return proc is not None and proc.poll() is not None

    def _fleet_exhausted(self) -> bool:
        """No live local workers and no budget to spawn replacements."""
        if not self.spawn:
            return False
        self._procs = [p for p in self._procs if p.poll() is None]
        return (
            not self._procs
            and self._spawned >= self.workers + self.max_respawns
        )

    # -- the dispatch loop -------------------------------------------

    def run(
        self,
        specs: Sequence[ShardSpec],
        excluded: frozenset[str] = frozenset(),
    ) -> list:
        if not specs:
            return []
        # Excluded workers are banned: the marker file retires them
        # before their next claim, wherever they are running.
        for worker in excluded:
            (self.layout.banned / worker).touch()
        keys = {}
        for index, spec in enumerate(specs):
            name = self.layout.message_name(spec.key)
            # Clear any stale artifacts of a previous attempt: a late
            # result posted by a presumed-dead worker, or the revoked
            # lease itself, must not be mistaken for this attempt's.
            stale_result = self.layout.results / name
            if stale_result.exists():
                stale_result.unlink()
            stale = self.layout.lease_of(spec.key)
            if stale is not None:
                try:
                    stale[0].unlink()
                except OSError:
                    pass
            protocol.write_message_file(
                self.layout.pending / name,
                protocol.encode_shard_request(spec),
            )
            keys[spec.key] = index
        outcomes: list = [None] * len(specs)
        first_leased: dict[str, tuple[str, float]] = {}
        while any(outcome is None for outcome in outcomes):
            self._maintain_workers()
            progress = False
            for spec in specs:
                index = keys[spec.key]
                if outcomes[index] is not None:
                    continue
                outcome = self._collect(spec, first_leased)
                if outcome is not None:
                    outcomes[index] = outcome
                    progress = True
            if progress:
                continue
            if self._fleet_exhausted():
                for spec in specs:
                    index = keys[spec.key]
                    if outcomes[index] is None:
                        outcomes[index] = ShardFailure(
                            "no live workers remaining (respawn budget "
                            f"{self.max_respawns} exhausted)",
                            shard_key=spec.key,
                            cells=tuple(
                                cell_label(c) for c in spec.cells
                            ),
                        )
                        self._remove_message(spec.key)
                break
            time.sleep(self.poll_s)
        return outcomes

    def _remove_message(self, key: str) -> None:
        """Withdraw a shard's message wherever it currently sits."""
        name = self.layout.message_name(key)
        for candidate in (self.layout.pending / name,):
            try:
                candidate.unlink()
            except OSError:
                pass
        lease = self.layout.lease_of(key)
        if lease is not None:
            try:
                lease[0].unlink()
            except OSError:
                pass

    def _collect(
        self,
        spec: ShardSpec,
        first_leased: dict[str, tuple[str, float]],
    ):
        """One shard's outcome, if its result arrived or its lease died."""
        cells = tuple(cell_label(c) for c in spec.cells)
        result_path = self.layout.results / self.layout.message_name(
            spec.key
        )
        leased = first_leased.get(spec.key)
        worker = leased[0] if leased else None
        try:
            message = protocol.read_message_file(result_path)
        except ProtocolError as exc:
            # The reply is on disk but does not even parse: a torn or
            # garbled post.  Retriable -- another worker recomputes.
            result_path.unlink(missing_ok=True)
            self._remove_message(spec.key)
            return ShardFailure(
                "worker posted an undecodable result message",
                shard_key=spec.key,
                cells=cells,
                worker=worker,
                cause=str(exc),
            )
        if message is not None:
            result_path.unlink(missing_ok=True)
            self._remove_message(spec.key)
            worker = message.get("worker") or worker
            if message.get("kind") == "error":
                # In protocol, deterministic: not a transport fault --
                # unless the worker flagged it retriable (a heartbeat
                # failure mid-shard, not a cell bug).
                retriable = bool(message.get("retriable", False))
                return ShardFailure(
                    "worker reported a retriable fault"
                    if retriable
                    else "shard raised inside the worker",
                    shard_key=spec.key,
                    cells=cells,
                    worker=worker,
                    cause=str(message.get("error")),
                    retriable=retriable,
                )
            if (
                message.get("kind") != "result"
                or message.get("id") != spec.key
            ):
                return ShardFailure(
                    "worker posted an out-of-protocol reply "
                    f"(kind={message.get('kind')!r})",
                    shard_key=spec.key,
                    cells=cells,
                    worker=worker,
                )
            try:
                decoded = protocol.decode_shard_result(message)
            except ProtocolError as exc:
                return ShardFailure(
                    "worker result payload undecodable",
                    shard_key=spec.key,
                    cells=cells,
                    worker=worker,
                    cause=str(exc),
                )
            if len(decoded.results) != len(spec.cells):
                # A truncated reply must never reach a journal as a
                # completed shard.
                return ShardFailure(
                    f"worker returned {len(decoded.results)} results "
                    f"for a {len(spec.cells)}-cell shard",
                    shard_key=spec.key,
                    cells=cells,
                    worker=worker,
                )
            return decoded
        lease = self.layout.lease_of(spec.key)
        if lease is None:
            return None  # pending, or mid-rename; keep polling
        lease_path, lease_worker = lease
        now = time.time()
        if spec.key not in first_leased:
            first_leased[spec.key] = (lease_worker, now)
        try:
            beat_age = now - lease_path.stat().st_mtime
        except OSError:
            return None  # released between listing and stat
        claim_age = now - first_leased[spec.key][1]
        dead = self._holder_is_dead(lease_worker)
        expired = beat_age > self.lease_ttl_s
        overdue = (
            self.shard_timeout_s is not None
            and claim_age > self.shard_timeout_s
        )
        if not dead and not expired and not overdue:
            return None
        # Reclaim: revoke the lease so the (presumed dead) holder cannot
        # post late, and report the typed failure the scheduler knows how
        # to back off, retry, and -- for repeat offenders -- quarantine.
        try:
            lease_path.unlink()
        except OSError:
            pass
        if dead:
            reason = "worker process exited while holding the lease"
        elif expired:
            reason = (
                f"worker lease expired (last heartbeat {beat_age:.1f}s "
                f"ago, TTL {self.lease_ttl_s:g}s)"
            )
        else:
            reason = (
                f"shard exceeded {self.shard_timeout_s:g}s deadline "
                "despite heartbeats"
            )
        return ShardFailure(
            reason,
            shard_key=spec.key,
            cells=cells,
            worker=lease_worker,
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.layout.stop_marker.touch()
        except OSError:
            pass
        deadline = time.monotonic() + 2.0
        for proc in self._procs:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self._procs = []
        if self._owns_directory:
            shutil.rmtree(self.layout.root, ignore_errors=True)

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
