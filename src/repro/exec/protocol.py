"""The versioned JSON-lines shard protocol spoken between parent and worker.

One message per line, UTF-8 JSON, over any byte-stream transport -- the
:class:`~repro.exec.backends.SubprocessWorkerBackend` uses local pipes, and
because shard payloads carry their numeric policy and cache root explicitly
(and the artifact store's content-addressed disk tier makes streams
location-transparent on a shared filesystem), the identical byte stream
works over ``ssh host python -m repro worker``.

Two framings share the one encoding:

- **Request/response** (:func:`write_message` / :func:`read_message`):
  newline-delimited over a live pipe; what the subprocess backend speaks.
- **Store-and-forward** (:func:`write_message_file` /
  :func:`read_message_file`): one message per file, posted by atomic
  rename; what the pull-model queue backend (:mod:`repro.exec.queue`)
  speaks.  Same bytes, so a ``result`` posted to a queue decodes through
  the very codepath a piped ``result`` does -- bit-exact either way.

Message kinds (every message carries ``"v": PROTOCOL_VERSION``):

- ``hello``    worker -> parent, once at startup: ``{pid}``.  The parent
  rejects a version mismatch before dispatching anything.
- ``shard``    parent -> worker: ``{id, cells, policy, profile,
  cache_root}`` plus additive opt-in fields -- ``snapshot`` /
  ``emit_snapshot`` (incremental windows), ``sharing`` /
  ``cluster_state`` / ``emit_cluster_state`` (cross-camera sharing),
  ``batch`` / ``snapshots`` / ``emit_snapshots`` (batched execution) --
  each omitted when unset.
- ``result``   worker -> parent: ``{id, results, profile}`` plus, when
  set, ``snapshot``, ``cluster_state``, per-cell ``snapshots``, and the
  worker's observed ``wall_s``.
- ``error``    worker -> parent: the shard raised; ``{id, error,
  traceback}``.  The worker stays alive and keeps serving.
- ``shutdown`` parent -> worker: drain and exit 0.

Bit-identity contract: :func:`encode_result` / :func:`decode_result` must
round-trip a :class:`~repro.core.results.RunResult` *exactly* -- the frozen
reference digests are checked against decoded results.  Arrays therefore
ship as base64 raw bytes tagged with dtype and shape (never as JSON number
lists, whose parse would be lossy for exotic dtypes and 10x the size), and
scalar floats ride as plain JSON numbers, which Python serializes via
``repr`` and re-parses to the identical double.

Payload encoding tolerates numpy scalars (``np.float64``/``np.int64``/
``np.bool_`` leak easily into cell fields built from numpy-derived
sweeps); they are coerced to the equivalent Python scalars on encode, so a
round-tripped cell compares equal to one built from Python literals.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO

import numpy as np

from repro.core.phases import PhaseKind, PhaseRecord
from repro.core.results import RunResult
from repro.core.snapshot import decode_array, encode_array
from repro.errors import ProtocolError
from repro.exec.shard import Fig2Cell, ShardResult, ShardSpec, SystemCell

__all__ = [
    "PROTOCOL_VERSION",
    "decode_cell",
    "decode_message",
    "decode_result",
    "decode_shard_result",
    "decode_shard_spec",
    "encode_cell",
    "encode_message",
    "encode_result",
    "encode_shard_request",
    "encode_shard_result",
    "read_message",
    "read_message_file",
    "write_message",
    "write_message_file",
]

#: Bump on any incompatible message-shape change; parent and worker refuse
#: to talk across versions.
PROTOCOL_VERSION = 1


class _PayloadEncoder(json.JSONEncoder):
    """JSON encoder accepting the numpy scalars that leak into payloads."""

    def default(self, obj):
        if isinstance(obj, np.bool_):
            return bool(obj)
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        return super().default(obj)


# The base64+dtype/shape array codec now lives in repro.core.snapshot
# (run snapshots reuse it); these aliases keep the protocol module's
# historical names.
_encode_array = encode_array
_decode_array = decode_array


def encode_result(result: RunResult) -> dict:
    """A :class:`RunResult` as a JSON-safe dict (bit-exact round trip)."""
    return {
        "system": result.system,
        "scenario": result.scenario,
        "pair": result.pair,
        "times": _encode_array(np.asarray(result.times)),
        "correct": _encode_array(np.asarray(result.correct)),
        "dropped": _encode_array(np.asarray(result.dropped)),
        "phases": [
            {
                "kind": phase.kind.value,
                "start_s": float(phase.start_s),
                "end_s": float(phase.end_s),
                "samples": int(phase.samples),
                "drift_detected": bool(phase.drift_detected),
            }
            for phase in result.phases
        ],
        "duration_s": float(result.duration_s),
        "energy_j": float(result.energy_j),
        "average_power_w": float(result.average_power_w),
    }


def decode_result(payload: dict) -> RunResult:
    """The inverse of :func:`encode_result`."""
    try:
        return RunResult(
            system=payload["system"],
            scenario=payload["scenario"],
            pair=payload["pair"],
            times=_decode_array(payload["times"]),
            correct=_decode_array(payload["correct"]),
            dropped=_decode_array(payload["dropped"]),
            phases=tuple(
                PhaseRecord(
                    kind=PhaseKind(phase["kind"]),
                    start_s=phase["start_s"],
                    end_s=phase["end_s"],
                    samples=phase["samples"],
                    drift_detected=phase["drift_detected"],
                )
                for phase in payload["phases"]
            ),
            duration_s=payload["duration_s"],
            energy_j=payload["energy_j"],
            average_power_w=payload["average_power_w"],
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise ProtocolError(f"malformed result payload: {exc}")


def encode_cell(cell) -> dict:
    """A grid cell as a JSON-safe dict (numpy scalars coerced)."""
    if isinstance(cell, Fig2Cell):
        return {
            "type": "fig2",
            "kind": cell.kind,
            "platform": cell.platform,
            "pair": cell.pair,
            "scenario": cell.scenario,
            "seed": int(cell.seed),
            "duration_s": (
                None if cell.duration_s is None else float(cell.duration_s)
            ),
        }
    if isinstance(cell, SystemCell):
        return {
            "type": "system",
            "system": cell.system,
            "pair": cell.pair,
            "scenario": cell.scenario,
            "seed": int(cell.seed),
            "duration_s": (
                None if cell.duration_s is None else float(cell.duration_s)
            ),
        }
    raise ProtocolError(f"unknown grid cell type {type(cell)!r}")


def decode_cell(payload: dict):
    """The inverse of :func:`encode_cell`."""
    try:
        kind = payload["type"]
        if kind == "fig2":
            return Fig2Cell(
                kind=payload["kind"],
                platform=payload["platform"],
                pair=payload["pair"],
                scenario=payload["scenario"],
                seed=payload["seed"],
                duration_s=payload["duration_s"],
            )
        if kind == "system":
            return SystemCell(
                system=payload["system"],
                pair=payload["pair"],
                scenario=payload["scenario"],
                seed=payload["seed"],
                duration_s=payload["duration_s"],
            )
    except KeyError as exc:
        raise ProtocolError(f"malformed cell payload: missing {exc}")
    raise ProtocolError(f"unknown cell type {kind!r}")


def encode_shard_request(spec: ShardSpec) -> dict:
    """The ``shard`` message dispatching one :class:`ShardSpec`.

    The incremental fields (``snapshot``, ``emit_snapshot``) are additive
    and omitted when unset, so batch shard messages keep their historical
    byte shape and a version-skewed worker that ignores them still
    returns a correct (prefix-computed) result.
    """
    message = {
        "v": PROTOCOL_VERSION,
        "kind": "shard",
        "id": spec.key,
        "cells": [encode_cell(cell) for cell in spec.cells],
        "policy": spec.policy,
        "profile": bool(spec.profile),
        "cache_root": spec.cache_root,
    }
    if spec.snapshot is not None:
        message["snapshot"] = spec.snapshot
    if spec.emit_snapshot:
        message["emit_snapshot"] = True
    if spec.sharing != "off":
        message["sharing"] = spec.sharing
    if spec.cluster_state is not None:
        message["cluster_state"] = spec.cluster_state
    if spec.emit_cluster_state:
        message["emit_cluster_state"] = True
    if spec.batch != "off":
        message["batch"] = spec.batch
    if spec.snapshots is not None:
        message["snapshots"] = list(spec.snapshots)
    if spec.emit_snapshots is not None:
        message["emit_snapshots"] = list(spec.emit_snapshots)
    return message


def decode_shard_spec(message: dict) -> ShardSpec:
    """A worker-side :class:`ShardSpec` from a ``shard`` message.

    Worker-side indices are synthetic (the parent keeps the real grid
    positions); only identity, cells, and execution context cross the
    wire.
    """
    cells = tuple(decode_cell(entry) for entry in message.get("cells", ()))
    return ShardSpec(
        key=str(message.get("id", "")),
        cells=cells,
        indices=tuple(range(len(cells))),
        policy=str(message.get("policy", "")),
        profile=bool(message.get("profile", False)),
        cache_root=message.get("cache_root"),
        snapshot=message.get("snapshot"),
        emit_snapshot=bool(message.get("emit_snapshot", False)),
        sharing=str(message.get("sharing", "off")),
        cluster_state=message.get("cluster_state"),
        emit_cluster_state=bool(message.get("emit_cluster_state", False)),
        batch=str(message.get("batch", "off")),
        snapshots=(
            tuple(message["snapshots"])
            if message.get("snapshots") is not None
            else None
        ),
        emit_snapshots=(
            tuple(bool(flag) for flag in message["emit_snapshots"])
            if message.get("emit_snapshots") is not None
            else None
        ),
    )


def encode_shard_result(
    key: str,
    results,
    profile: dict | None,
    snapshot: dict | None = None,
    *,
    cluster_state: dict | None = None,
    snapshots: tuple | None = None,
    wall_s: float | None = None,
) -> dict:
    """The ``result`` message for one completed shard.

    ``snapshots`` (per-cell, batched service shards) and ``wall_s`` (the
    worker's observed execution time, feeding the planner's cost weights)
    are additive and omitted when unset, like every extension field.
    """
    message = {
        "v": PROTOCOL_VERSION,
        "kind": "result",
        "id": key,
        "results": [encode_result(result) for result in results],
        "profile": profile,
    }
    if snapshot is not None:
        message["snapshot"] = snapshot
    if cluster_state is not None:
        message["cluster_state"] = cluster_state
    if snapshots is not None:
        message["snapshots"] = list(snapshots)
    if wall_s is not None:
        message["wall_s"] = float(wall_s)
    return message


def decode_shard_result(message: dict) -> ShardResult:
    """A parent-side :class:`ShardResult` from a ``result`` message."""
    return ShardResult(
        key=str(message.get("id", "")),
        results=tuple(
            decode_result(entry) for entry in message.get("results", ())
        ),
        profile=message.get("profile"),
        snapshot=message.get("snapshot"),
        cluster_state=message.get("cluster_state"),
        snapshots=(
            tuple(message["snapshots"])
            if message.get("snapshots") is not None
            else None
        ),
        wall_s=message.get("wall_s"),
    )


def encode_message(message: dict) -> str:
    """One protocol message as a single JSON line (no embedded newlines)."""
    return json.dumps(
        message, cls=_PayloadEncoder, separators=(",", ":")
    )


def decode_message(line: str) -> dict:
    """Parse and version-check one protocol line."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"undecodable protocol line: {exc}")
    if not isinstance(message, dict) or "kind" not in message:
        raise ProtocolError("protocol message must be an object with 'kind'")
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {version!r}, "
            f"this process speaks {PROTOCOL_VERSION}"
        )
    return message


def write_message(stream: IO[str], message: dict) -> None:
    """Write one message line and flush (pipes are request/response)."""
    stream.write(encode_message(message) + "\n")
    stream.flush()


def read_message(stream: IO[str]) -> dict | None:
    """Read the next message line; None only on true EOF.

    Blank lines are skipped, not conflated with EOF: an ssh-wrapped
    channel can emit empty keepalive lines mid-conversation, and
    misreading one as "worker exited" would retire a healthy worker.
    """
    while True:
        line = stream.readline()
        if not line:
            return None
        line = line.strip()
        if line:
            return decode_message(line)


def write_message_file(path: str | Path, message: dict) -> Path:
    """Store-and-forward framing: one message per file, atomically.

    The queue transport's variant of :func:`write_message`: the identical
    JSON-lines encoding (results round-trip bit-exactly either way), but
    framed as a whole file whose *appearance* is the delivery event.  The
    message is written to a temp file in the same directory, fsynced, and
    ``os.replace``\\ d into place -- a reader can never observe a partial
    message, and a writer killed mid-post leaves only a temp file the
    queue ignores.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w") as handle:
        handle.write(encode_message(message) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def read_message_file(path: str | Path) -> dict | None:
    """Read one store-and-forward message file; None if it is not there.

    Raises :class:`ProtocolError` for a file that exists but does not
    parse or speaks the wrong protocol version -- a *corrupt* message
    must surface as a typed failure, never be skipped as if undelivered.
    """
    try:
        text = Path(path).read_text()
    except FileNotFoundError:
        return None
    line = text.strip()
    if not line:
        raise ProtocolError(f"message file {path} is empty")
    return decode_message(line.splitlines()[0])
