"""Lockstep batched execution: advance K co-sharded cells per numpy call.

The serial executor runs one cell's phase loop at a time, so a worker
serving K same-geometry cameras makes K times the numpy dispatches it
needs to.  This module runs each cell of a batch group on its own *lane*
thread executing the completely unmodified ``run_cell`` /
``run_cell_incremental`` code, and intercepts only the two functions where
all lane-relevant numpy work funnels: ``MLPClassifier.forward`` and
``train_sgd`` (see :func:`repro.batching.current_lane`).  Each intercepted
call becomes a request to the :class:`BatchConductor`; when every live
lane has submitted its next request, the last-arriving lane executes the
whole *round* inline:

- requests agreeing on kind, model geometry, dtype, operand shapes, and
  hyperparameters are stacked and run through the batched kernels
  (:class:`~repro.learn.mlp.BatchedMLPBank`,
  :func:`~repro.learn.train.train_sgd_batched`) -- one numpy call for the
  whole group, each result slice bitwise the serial result;
- requests with no shape-mate run the original serial code, so
  divergence (a drifted cell retraining while its neighbors infer, ragged
  final windows) costs only the batching, never correctness.

Lanes therefore stay in lockstep at *request* granularity -- each cell's
``RunResult``, snapshot, and journal contract is untouched -- and every
result is bit-identical to the serial path regardless of how the OS
schedules the lane threads: a round's composition is each live lane's
next request (deterministic), groups are ordered by lane index, and every
stacked kernel is per-slice exact.

Determinism also makes the barrier deadlock-free: a lane either submits
its next request or finishes its cell and deregisters, and either event
re-checks the ``pending == live`` round condition.

Profiling composes (the satellite fix in :mod:`repro.profiling`): each
lane absorbs its barrier-wait time, keeping only its fair share of each
round's compute inside the phase scope that submitted the request, so
``--profile`` totals still measure work rather than synchronization.
"""

from __future__ import annotations

import contextvars
import threading
import time

import numpy as np

from repro import profiling
from repro.batching import lane_scope, suspend_lane
from repro.errors import ConfigurationError
from repro.exec.shard import (
    run_cell,
    run_cell_incremental,
    warm_model_caches,
)
from repro.learn.mlp import BatchedMLPBank
from repro.learn.train import train_sgd, train_sgd_batched

__all__ = ["BatchConductor", "run_cells_batched", "run_lane_jobs"]


def _geometry(model) -> tuple:
    return tuple(w.shape for w in model.weights) + (str(model.dtype),)


class _Request:
    """One intercepted model call, parked at the barrier until its round."""

    __slots__ = (
        "lane",
        "kind",
        "key",
        "model",
        "args",
        "result",
        "error",
        "charge",
        "done",
    )

    def __init__(self, lane, kind: str, key: tuple, model, args) -> None:
        self.lane = lane
        self.kind = kind
        self.key = key
        self.model = model
        self.args = args
        self.result = None
        self.error: BaseException | None = None
        self.charge = 0.0
        self.done = False


class _Lane:
    """One cell's interception point (installed thread-locally)."""

    __slots__ = ("conductor", "index")

    def __init__(self, conductor: "BatchConductor", index: int) -> None:
        self.conductor = conductor
        self.index = index

    def forward(self, model, x, fmt, sensitivity):
        key = (
            "forward",
            _geometry(model),
            np.shape(x),
            fmt,
            sensitivity,
        )
        return self.conductor.submit(
            _Request(self, "forward", key, model, (x, fmt, sensitivity))
        )

    def train(self, model, x, y, config, rng):
        key = (
            "train",
            _geometry(model),
            np.shape(x),
            np.shape(y),
            config,
        )
        return self.conductor.submit(
            _Request(self, "train", key, model, (x, y, config, rng))
        )


class BatchConductor:
    """The lockstep barrier grouping live lanes' requests into rounds.

    All model compute is serialized through the conductor: the round
    executes on exactly one thread while every other lane is parked at
    the barrier, so the serial kernels' thread-unsafe caches (quantized
    weights, pretrained models) never race.
    """

    def __init__(self, lanes: int) -> None:
        if lanes < 1:
            raise ConfigurationError("a conductor needs at least one lane")
        self._cond = threading.Condition()
        self._live = lanes
        self._pending: list[_Request] = []
        self._banks: dict[tuple, BatchedMLPBank] = {}
        #: Round/request accounting (tests and benchmarks read these).
        self.rounds = 0
        self.batched_requests = 0
        self.serial_requests = 0

    def submit(self, request: _Request):
        """Park a lane's request until its round; return its result."""
        started = time.perf_counter()
        with self._cond:
            self._pending.append(request)
            if len(self._pending) >= self._live:
                self._run_round()
            else:
                while not request.done:
                    self._cond.wait()
        waited = time.perf_counter() - started
        # Keep only this cell's fair share of the round inside the phase
        # scope that submitted the call; the rest was synchronization.
        profiling.absorb(max(0.0, waited - request.charge))
        if request.error is not None:
            raise request.error
        return request.result

    def deregister(self) -> None:
        """A lane finished its cell; release the barrier it was holding."""
        with self._cond:
            self._live -= 1
            if self._pending and len(self._pending) >= self._live:
                self._run_round()

    # -- round execution (caller holds the lock) -------------------------

    def _run_round(self) -> None:
        requests, self._pending = self._pending, []
        self.rounds += 1
        groups: dict[tuple, list[_Request]] = {}
        for request in requests:
            groups.setdefault(request.key, []).append(request)
        with suspend_lane():
            for group in groups.values():
                group.sort(key=lambda request: request.lane.index)
                started = time.perf_counter()
                try:
                    if len(group) == 1:
                        self._run_serial(group[0])
                    else:
                        self._run_batched(group)
                except Exception as exc:
                    for request in group:
                        request.error = exc
                charge = (time.perf_counter() - started) / len(group)
                for request in group:
                    request.charge = charge
                    request.done = True
        self._cond.notify_all()

    def _run_serial(self, request: _Request) -> None:
        """A request with no shape-mate runs the exact serial code."""
        self.serial_requests += 1
        if request.kind == "forward":
            x, fmt, sensitivity = request.args
            request.result = request.model.forward(x, fmt, sensitivity)
        else:
            x, y, config, rng = request.args
            request.result = train_sgd(request.model, x, y, config, rng)

    def _run_batched(self, group: list[_Request]) -> None:
        self.batched_requests += len(group)
        models = [request.model for request in group]
        if group[0].kind == "forward":
            fmt, sensitivity = group[0].args[1], group[0].args[2]
            bank = self._bank(models)
            xs = np.stack(
                [
                    np.asarray(request.args[0], dtype=bank.dtype)
                    for request in group
                ]
            )
            logits = bank.forward(xs, fmt, sensitivity)
            for k, request in enumerate(group):
                request.result = logits[k]
        else:
            config = group[0].args[2]
            losses = train_sgd_batched(
                models,
                [request.args[0] for request in group],
                [request.args[1] for request in group],
                config,
                [request.args[3] for request in group],
            )
            for k, request in enumerate(group):
                request.result = losses[k]

    def _bank(self, models) -> BatchedMLPBank:
        # Banks (and their stacked-weight caches) persist across rounds
        # for recurring membership.  Keying by id() is safe because the
        # cached bank holds strong references: an id cannot be reused
        # while its object is alive.
        key = tuple(id(model) for model in models)
        bank = self._banks.get(key)
        if bank is None:
            bank = BatchedMLPBank(models)
            self._banks[key] = bank
        return bank


def run_lane_jobs(jobs: list) -> list:
    """Run zero-arg callables in lockstep lanes; results in job order.

    The generic driver under :func:`run_cells_batched` and the sharing
    composition (one lane per cluster): each job runs on its own thread
    with a lane installed, in a copy of the caller's context so numeric/
    sharing/batching policies apply unchanged.  The first lane error is
    re-raised after every lane has finished.
    """
    count = len(jobs)
    if count == 0:
        return []
    conductor = BatchConductor(count)
    results: list = [None] * count
    errors: list[BaseException | None] = [None] * count

    def lane_main(index: int, job) -> None:
        try:
            with lane_scope(_Lane(conductor, index)):
                results[index] = job()
        except BaseException as exc:
            errors[index] = exc
        finally:
            conductor.deregister()

    threads = []
    for index, job in enumerate(jobs):
        context = contextvars.copy_context()
        threads.append(
            threading.Thread(
                target=context.run,
                args=(lane_main, index, job),
                name=f"batch-lane-{index}",
            )
        )
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for error in errors:
        if error is not None:
            raise error
    return results


def _run_one(cell, snapshot, emit_snapshot):
    if snapshot is not None or emit_snapshot:
        return run_cell_incremental(cell, snapshot, emit_snapshot)
    return run_cell(cell), None


def run_cells_batched(
    cells,
    snapshots=None,
    emit_snapshots=None,
) -> list[tuple]:
    """Execute cells in lockstep lanes; per-cell ``(result, snapshot)``.

    The batched counterpart of running each cell through ``run_cell`` /
    ``run_cell_incremental`` in order -- same per-cell contract, same
    bits, fewer numpy dispatches.  ``snapshots`` / ``emit_snapshots``
    align with ``cells`` (service windows resume and emit per member);
    omitted entries run the plain full-prefix path.

    A single cell runs the serial functions directly on the calling
    thread -- no conductor, no lane threads -- so K=1 *is* the serial
    code path, not an emulation of it.
    """
    cells = list(cells)
    count = len(cells)
    snaps = list(snapshots) if snapshots is not None else [None] * count
    emits = (
        list(emit_snapshots)
        if emit_snapshots is not None
        else [False] * count
    )
    if len(snaps) != count or len(emits) != count:
        raise ConfigurationError("snapshots must align with cells")
    if count == 0:
        return []
    if count == 1:
        return [_run_one(cells[0], snaps[0], emits[0])]

    # Fill the shared caches serially before the lanes race for them:
    # model pretrains via the existing warm path, streams by touching
    # each distinct materialization once.
    with profiling.scope(profiling.MATERIALIZE):
        warm_model_caches(cells)
        _warm_streams(cells)

    jobs = [
        (
            lambda cell=cell, snap=snaps[i], emit=emits[i]: _run_one(
                cell, snap, emit
            )
        )
        for i, cell in enumerate(cells)
    ]
    return run_lane_jobs(jobs)


def _warm_streams(cells) -> None:
    from repro.data.scenarios import build_scenario

    seen: set[tuple] = set()
    for cell in cells:
        key = (cell.scenario, cell.duration_s, cell.seed)
        if key in seen:
            continue
        seen.add(key)
        if cell.duration_s is None:
            stream = build_scenario(cell.scenario)
        else:
            stream = build_scenario(cell.scenario, duration_s=cell.duration_s)
        stream.materialize(cell.seed)
