"""The scheduler: backoff/quarantine retry, completion journal, merge.

Layered on any :class:`~repro.exec.backends.ExecutionBackend`:

- **Retry.**  A shard whose outcome is a retriable
  :class:`~repro.exec.shard.ShardFailure` is resubmitted (fresh pool /
  replacement worker) up to :data:`DEFAULT_MAX_ATTEMPTS` times; workers
  observed failing are excluded from later attempts.  Retries are paced
  by *per-shard exponential backoff with deterministic jitter*
  (:func:`backoff_delay`): each failed shard waits
  ``base * 2**(attempt-1)`` seconds scaled by a jitter derived from
  ``sha256(shard key, attempt)`` -- reproducible run to run, yet
  decorrelated across shards, so a fleet-wide hiccup does not resubmit
  every shard in lockstep.  Retrying is *safe* because shard execution is
  deterministic -- a retried shard reproduces the original results
  bit-identically -- and only when every attempt is spent does the typed
  failure propagate, naming the cells that are missing.
- **Quarantine.**  A *poison shard* -- one observed killing
  :data:`DEFAULT_QUARANTINE_AFTER` distinct workers -- is quarantined
  rather than retried to the attempts bound: its input reliably destroys
  whatever executes it, so feeding it more of the fleet converts one bad
  shard into a dead fleet.  The typed :class:`ShardQuarantined` failure
  names the shard's cells and the workers it took down.
- **Journal.**  :class:`SweepJournal` appends one JSON line per completed
  shard (cell keys + bit-exact encoded results) under the sweep's output
  directory.  ``repro sweep --resume`` reloads it, skips every finished
  cell, and re-merges the decoded results into the final document --
  identical to an uninterrupted run.  Entries are keyed per *cell* (pure
  content, no worker count), so a journal written at ``--jobs 8`` resumes
  correctly at ``--jobs 1``.  Creation and appends are crash-safe: the
  header lands by temp-file + fsync + atomic rename (a kill between
  journal creation and the first shard cannot leave a torn header), and
  every record is fsynced -- with the directory entry -- before the
  scheduler moves on.

Failure ordering: when a batch produces both successes and a fatal
(non-retriable) failure, every success is processed -- journaled,
``on_complete`` fired -- *before* the failure raises.  Anything less
silently discards finished work: a ``--resume`` would recompute shards
that had already completed.

:func:`execute_cells` is the one engine everything routes through:
``run_cells``, the figure experiments behind it, and ``run_sweep`` -- it
plans shards, dispatches through the scheduler, restores submission
order, and folds worker profile snapshots into the parent's profiler.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro import profiling
from repro.cache import CACHE_ENV
from repro.core.results import RunResult
from repro.errors import ConfigurationError
from repro.exec import faults, protocol
from repro.exec.backends import ExecutionBackend
from repro.exec.shard import (
    CELL_TYPES,
    ShardFailure,
    ShardQuarantined,
    ShardResult,
    ShardSpec,
    cell_key,
    make_shard_specs,
    note_shard_observation,
    warm_model_caches,
)
from repro.numeric import active_policy

__all__ = [
    "DEFAULT_BACKOFF_BASE_S",
    "DEFAULT_BACKOFF_CAP_S",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_QUARANTINE_AFTER",
    "JOURNAL_VERSION",
    "Scheduler",
    "SweepJournal",
    "backoff_delay",
    "execute_cells",
]

#: Times a shard may be attempted before its failure propagates.
DEFAULT_MAX_ATTEMPTS = 3

#: First-retry backoff; doubles per subsequent attempt.
DEFAULT_BACKOFF_BASE_S = 0.25

#: Ceiling on any single backoff wait.
DEFAULT_BACKOFF_CAP_S = 30.0

#: Distinct workers a shard may kill before it is quarantined as poison.
#: Matches :data:`DEFAULT_MAX_ATTEMPTS` so the default contract -- a shard
#: may be attempted three times -- is unchanged; when all three failures
#: came from *distinct* workers the richer quarantine diagnosis replaces
#: the plain exhaustion error.  Lower it (e.g. with a larger attempts
#: budget) to cut off poison shards before they chew through the bound.
DEFAULT_QUARANTINE_AFTER = 3

#: Schema version of the journal file.
JOURNAL_VERSION = 1


def backoff_delay(
    shard_key: str,
    attempt: int,
    base_s: float = DEFAULT_BACKOFF_BASE_S,
    cap_s: float = DEFAULT_BACKOFF_CAP_S,
) -> float:
    """Seconds to wait before retrying ``shard_key`` after ``attempt`` failures.

    Exponential (``base * 2**(attempt-1)``) with *deterministic* jitter:
    the multiplier in [1, 2) derives from ``sha256(shard_key, attempt)``,
    so two runs of the same plan pace identically (reproducible tests,
    comparable benchmarks) while different shards failing together fan
    their retries out instead of stampeding the fleet in lockstep.
    """
    if base_s <= 0:
        return 0.0
    digest = hashlib.sha256(f"{shard_key}|{attempt}".encode()).digest()
    jitter = 1.0 + int.from_bytes(digest[:8], "big") / 2**64
    return min(cap_s, base_s * (2 ** (attempt - 1)) * jitter)


@dataclass
class _PendingShard:
    """Book-keeping for one not-yet-completed shard."""

    index: int
    spec: ShardSpec
    attempts: int = 0
    not_before: float = 0.0
    killers: set = field(default_factory=set)


class Scheduler:
    """Run shard specs through a backend with backoff/quarantine retry.

    Args:
        backend: The transport executing shards.
        max_attempts: Attempts per shard before its failure propagates.
        on_complete: Called with ``(spec, shard_result)`` as each shard
            finishes (journaling hook); exceptions it raises abort the
            run immediately -- completed shards stay journaled.
        backoff_base_s: First-retry wait (doubles per attempt, seeded
            jitter; see :func:`backoff_delay`).  0 retries immediately --
            what in-process tests want.
        backoff_cap_s: Ceiling on any single backoff wait.
        quarantine_after: Distinct workers a shard may kill before it is
            quarantined as poison (:class:`ShardQuarantined`) instead of
            being fed more of the fleet.  Backends with anonymous workers
            (the process pool) never identify killers, so there the
            attempts bound governs alone.
    """

    def __init__(
        self,
        backend: ExecutionBackend,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        on_complete: Callable[[ShardSpec, ShardResult], None] | None = None,
        backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
        backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
        quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
    ) -> None:
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        if quarantine_after < 1:
            raise ConfigurationError(
                f"quarantine_after must be >= 1, got {quarantine_after}"
            )
        self.backend = backend
        self.max_attempts = max_attempts
        self.on_complete = on_complete
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.quarantine_after = quarantine_after

    def run(self, specs: Sequence[ShardSpec]) -> list[ShardResult]:
        """Execute every spec, retrying failures; outcomes align with input.

        Raises:
            ShardQuarantined: A poison shard killed ``quarantine_after``
                distinct workers; it is non-retriable by construction.
            ShardFailure: A shard still failed after ``max_attempts``
                attempts (the last failure, stamped with the count), or
                failed non-retriably (a deterministic in-cell error).
        """
        outcomes: list[ShardResult | None] = [None] * len(specs)
        pending = [
            _PendingShard(index, spec) for index, spec in enumerate(specs)
        ]
        excluded: set[str] = set()
        while pending:
            now = time.monotonic()
            ready = [entry for entry in pending if entry.not_before <= now]
            if not ready:
                # Every remaining shard is inside its backoff window.
                time.sleep(
                    min(entry.not_before for entry in pending) - now
                )
                continue
            waiting = [entry for entry in pending if entry.not_before > now]
            results = self.backend.run(
                [entry.spec for entry in ready],
                excluded=frozenset(excluded),
            )
            # A fatal outcome is *deferred* to the end of the batch:
            # successes that share the batch must reach on_complete (be
            # journaled) first, or a --resume recomputes finished work.
            fatal: ShardFailure | None = None
            retry: list[_PendingShard] = []
            for position, entry in enumerate(ready):
                spec = entry.spec
                # Never trust the backend's alignment: a short or
                # misfilled outcome list (e.g. a dispatch thread dying)
                # must not masquerade as completed shards.
                outcome = (
                    results[position] if position < len(results) else None
                )
                if not isinstance(outcome, (ShardResult, ShardFailure)):
                    outcome = ShardFailure(
                        "backend returned no outcome for the shard",
                        shard_key=spec.key,
                    )
                if isinstance(outcome, ShardResult):
                    outcomes[entry.index] = outcome
                    # Feed the observed wall back into the planner's cost
                    # model: the next plan_shards() balances by measured
                    # per-cell cost instead of the uniform default.
                    note_shard_observation(spec, outcome.wall_s)
                    if self.on_complete is not None:
                        self.on_complete(spec, outcome)
                    continue
                entry.attempts += 1
                if not outcome.retriable:
                    # A cell raised deterministically inside a healthy
                    # worker: recomputing it would reproduce the
                    # exception, so it surfaces (after the batch's
                    # successes are journaled) -- as the original
                    # exception when it is available in-process, keeping
                    # the error contract identical to the serial path.
                    fatal = fatal or outcome
                    continue
                if outcome.worker:
                    excluded.add(outcome.worker)
                    entry.killers.add(outcome.worker)
                if len(entry.killers) >= self.quarantine_after:
                    fatal = fatal or ShardQuarantined(
                        f"poison shard: killed {len(entry.killers)} "
                        "distinct workers, quarantined as non-retriable",
                        shard_key=spec.key,
                        cells=outcome.cells,
                        worker=", ".join(sorted(entry.killers)),
                        attempts=entry.attempts,
                        cause=outcome.cause,
                    )
                    continue
                if entry.attempts >= self.max_attempts:
                    fatal = fatal or outcome.with_attempts(entry.attempts)
                    continue
                entry.not_before = time.monotonic() + backoff_delay(
                    spec.key,
                    entry.attempts,
                    self.backoff_base_s,
                    self.backoff_cap_s,
                )
                retry.append(entry)
            if fatal is not None:
                if (
                    not fatal.retriable
                    and fatal.cause_exception is not None
                ):
                    raise fatal.cause_exception from fatal
                raise fatal
            pending = waiting + retry
        return outcomes  # type: ignore[return-value]


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry to disk (no-op where unsupported)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class SweepJournal:
    """Append-only per-shard completion log backing ``sweep --resume``.

    One header line pins the journal to a specific compiled plan (via a
    content fingerprint); each subsequent line records one completed
    shard as ``{cell key -> bit-exact encoded RunResult}``.  Loading
    tolerates a truncated final line -- exactly what a killed run leaves
    behind -- and refuses (``ConfigurationError``) a journal whose
    fingerprint does not match the plan being resumed.
    """

    def __init__(
        self, path: str | Path, fingerprint: str, *, resume: bool = False
    ) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self._completed: dict[str, RunResult] = {}
        if resume and self.path.exists():
            self._load()
            # A kill mid-append leaves a torn final line with no newline;
            # appending straight after it would glue the next record onto
            # the junk and destroy it.  Terminate the torn line now so it
            # stands alone (skipped by every later load).
            with self.path.open("rb") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                if size:
                    handle.seek(size - 1)
                    torn_tail = handle.read(1) != b"\n"
            if torn_tail:
                with self.path.open("a") as handle:
                    handle.write("\n")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            header = {
                "kind": "header",
                "version": JOURNAL_VERSION,
                "fingerprint": fingerprint,
            }
            # Temp-file + fsync + atomic rename (+ directory fsync): a
            # kill between journal creation and the first shard must
            # leave either no journal or a complete header -- a torn
            # header would poison every later --resume of this sweep.
            tmp = self.path.with_name(self.path.name + ".tmp")
            with tmp.open("w") as handle:
                handle.write(json.dumps(header) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
            _fsync_dir(self.path.parent)

    def _load(self) -> None:
        lines = self.path.read_text().splitlines()
        if not lines:
            raise ConfigurationError(
                f"journal {self.path} is empty; rerun without --resume"
            )
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            header = {}
        if (
            header.get("kind") != "header"
            or header.get("version") != JOURNAL_VERSION
        ):
            raise ConfigurationError(
                f"{self.path} is not a version-{JOURNAL_VERSION} sweep "
                "journal; rerun without --resume"
            )
        if header.get("fingerprint") != self.fingerprint:
            raise ConfigurationError(
                f"journal {self.path} belongs to a different sweep plan "
                "(spec, policies, or cells changed); rerun without "
                "--resume or point --out elsewhere"
            )
        for line in lines[1:]:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A killed run can leave one torn trailing line; the
                # shard it described simply reruns.
                continue
            if record.get("kind") != "shard":
                continue
            for entry in record.get("entries", ()):
                self._completed[entry["key"]] = protocol.decode_result(
                    entry["result"]
                )

    def __len__(self) -> int:
        return len(self._completed)

    def lookup(self, key: str) -> RunResult | None:
        """The journaled result for one cell key, if it completed."""
        return self._completed.get(key)

    def record(self, spec: ShardSpec, result: ShardResult) -> None:
        """Append one completed shard (fsynced -- file and directory --
        before returning), so a kill immediately after never loses it."""
        entries = [
            {
                "key": cell_key(spec.policy, cell),
                "result": protocol.encode_result(run),
            }
            for cell, run in zip(spec.cells, result.results)
        ]
        line = json.dumps(
            {"kind": "shard", "shard": spec.key, "entries": entries},
            separators=(",", ":"),
        )
        torn = faults.journal_fault(spec.key)
        with self.path.open("a") as handle:
            if torn is not None:
                # Injected kill mid-append: flush a prefix of the line
                # to disk and abort -- exactly the torn tail _load()
                # must tolerate on the next --resume.
                handle.write(line[: max(1, int(len(line) * torn))])
                handle.flush()
                os.fsync(handle.fileno())
                raise ShardFailure(
                    "injected torn journal write "
                    f"({faults.FAULT_PLAN_ENV} plan)",
                    shard_key=spec.key,
                )
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        _fsync_dir(self.path.parent)
        for entry, run in zip(entries, result.results):
            self._completed[entry["key"]] = run


def execute_cells(
    cells: Sequence,
    *,
    backend: ExecutionBackend,
    workers: int,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    on_complete: Callable[[ShardSpec, ShardResult], None] | None = None,
) -> list[RunResult]:
    """Plan, dispatch, retry, and reassemble one grid of cells.

    The single engine behind ``run_cells`` and ``run_sweep``: shards the
    grid by stream signature for ``workers``, runs the shards through
    ``backend`` under a retrying :class:`Scheduler`, restores submission
    order from the carried indices, and folds worker profile snapshots
    into the parent's active profiler.  Results are bit-identical across
    backends and worker counts.
    """
    cells = list(cells)
    for cell in cells:
        if not isinstance(cell, CELL_TYPES):
            raise ConfigurationError(
                f"unknown grid cell type {type(cell)!r}"
            )
    if not cells:
        return []
    multiprocess = backend.name != "serial"
    if multiprocess:
        # Parent-side pretraining warms the in-process caches forked pool
        # workers inherit and the on-disk tier subprocess workers read.
        warm_model_caches(cells)
    profiler = profiling.active()
    specs = make_shard_specs(
        cells,
        workers if multiprocess else 1,
        active_policy().name,
        # Serial shards run under the parent profiler directly; only
        # other-process shards profile themselves and ship snapshots.
        profile=multiprocess and profiler is not None,
        cache_root=os.environ.get(CACHE_ENV),
    )
    scheduler = Scheduler(
        backend, max_attempts=max_attempts, on_complete=on_complete
    )
    shard_results = scheduler.run(specs)
    results: list[RunResult | None] = [None] * len(cells)
    for spec, shard_result in zip(specs, shard_results):
        for index, run in zip(spec.indices, shard_result.results):
            results[index] = run
        if profiler is not None and shard_result.profile:
            # Worker phase seconds fold into the parent profile, so
            # --profile composes with every multi-process backend
            # (totals become CPU seconds across processes).
            profiler.merge(shard_result.profile)
    return results  # type: ignore[return-value]
