"""The scheduler: bounded per-shard retry, completion journal, merge.

Layered on any :class:`~repro.exec.backends.ExecutionBackend`:

- **Retry.**  A shard whose outcome is a
  :class:`~repro.exec.shard.ShardFailure` is resubmitted (fresh pool /
  replacement worker) up to :data:`DEFAULT_MAX_ATTEMPTS` times; workers
  observed failing are excluded from later attempts.  Retrying is *safe*
  because shard execution is deterministic -- a retried shard reproduces
  the original results bit-identically -- and only when every attempt is
  spent does the typed failure propagate, naming the cells that are
  missing.
- **Journal.**  :class:`SweepJournal` appends one JSON line per completed
  shard (cell keys + bit-exact encoded results) under the sweep's output
  directory.  ``repro sweep --resume`` reloads it, skips every finished
  cell, and re-merges the decoded results into the final document --
  identical to an uninterrupted run.  Entries are keyed per *cell* (pure
  content, no worker count), so a journal written at ``--jobs 8`` resumes
  correctly at ``--jobs 1``.

:func:`execute_cells` is the one engine everything routes through:
``run_cells``, the figure experiments behind it, and ``run_sweep`` -- it
plans shards, dispatches through the scheduler, restores submission
order, and folds worker profile snapshots into the parent's profiler.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Sequence

from repro import profiling
from repro.cache import CACHE_ENV
from repro.core.results import RunResult
from repro.errors import ConfigurationError
from repro.exec import protocol
from repro.exec.backends import ExecutionBackend
from repro.exec.shard import (
    CELL_TYPES,
    ShardFailure,
    ShardResult,
    ShardSpec,
    cell_key,
    make_shard_specs,
    warm_model_caches,
)
from repro.numeric import active_policy

__all__ = [
    "DEFAULT_MAX_ATTEMPTS",
    "JOURNAL_VERSION",
    "Scheduler",
    "SweepJournal",
    "execute_cells",
]

#: Times a shard may be attempted before its failure propagates.
DEFAULT_MAX_ATTEMPTS = 3

#: Schema version of the journal file.
JOURNAL_VERSION = 1


class Scheduler:
    """Run shard specs through a backend with bounded per-shard retry.

    Args:
        backend: The transport executing shards.
        max_attempts: Attempts per shard before its failure propagates.
        on_complete: Called with ``(spec, shard_result)`` as each shard
            finishes (journaling hook); exceptions it raises abort the
            run immediately -- completed shards stay journaled.
    """

    def __init__(
        self,
        backend: ExecutionBackend,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        on_complete: Callable[[ShardSpec, ShardResult], None] | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.backend = backend
        self.max_attempts = max_attempts
        self.on_complete = on_complete

    def run(self, specs: Sequence[ShardSpec]) -> list[ShardResult]:
        """Execute every spec, retrying failures; outcomes align with input.

        Raises:
            ShardFailure: A shard still failed after ``max_attempts``
                attempts (the last failure, stamped with the count).
        """
        outcomes: list[ShardResult | None] = [None] * len(specs)
        pending = list(enumerate(specs))
        excluded: set[str] = set()
        last_failure: ShardFailure | None = None
        for attempt in range(1, self.max_attempts + 1):
            if not pending:
                break
            batch = [spec for _, spec in pending]
            results = self.backend.run(batch, excluded=frozenset(excluded))
            retry = []
            for position, (index, spec) in enumerate(pending):
                # Never trust the backend's alignment: a short or
                # misfilled outcome list (e.g. a dispatch thread dying)
                # must not masquerade as completed shards.
                outcome = (
                    results[position] if position < len(results) else None
                )
                if not isinstance(outcome, (ShardResult, ShardFailure)):
                    outcome = ShardFailure(
                        "backend returned no outcome for the shard",
                        shard_key=spec.key,
                    )
                if isinstance(outcome, ShardFailure):
                    if not outcome.retriable:
                        # A cell raised deterministically inside a
                        # healthy worker: recomputing it would reproduce
                        # the exception, so surface it now -- as the
                        # original exception when it is available
                        # in-process, keeping the error contract
                        # identical to the serial path.
                        if outcome.cause_exception is not None:
                            raise outcome.cause_exception from outcome
                        raise outcome
                    last_failure = outcome
                    if outcome.worker:
                        excluded.add(outcome.worker)
                    retry.append((index, spec))
                else:
                    outcomes[index] = outcome
                    if self.on_complete is not None:
                        self.on_complete(spec, outcome)
            pending = retry
        if pending:
            assert last_failure is not None
            raise last_failure.with_attempts(self.max_attempts)
        return outcomes  # type: ignore[return-value]


class SweepJournal:
    """Append-only per-shard completion log backing ``sweep --resume``.

    One header line pins the journal to a specific compiled plan (via a
    content fingerprint); each subsequent line records one completed
    shard as ``{cell key -> bit-exact encoded RunResult}``.  Loading
    tolerates a truncated final line -- exactly what a killed run leaves
    behind -- and refuses (``ConfigurationError``) a journal whose
    fingerprint does not match the plan being resumed.
    """

    def __init__(
        self, path: str | Path, fingerprint: str, *, resume: bool = False
    ) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self._completed: dict[str, RunResult] = {}
        if resume and self.path.exists():
            self._load()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            header = {
                "kind": "header",
                "version": JOURNAL_VERSION,
                "fingerprint": fingerprint,
            }
            self.path.write_text(json.dumps(header) + "\n")

    def _load(self) -> None:
        lines = self.path.read_text().splitlines()
        if not lines:
            raise ConfigurationError(
                f"journal {self.path} is empty; rerun without --resume"
            )
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            header = {}
        if (
            header.get("kind") != "header"
            or header.get("version") != JOURNAL_VERSION
        ):
            raise ConfigurationError(
                f"{self.path} is not a version-{JOURNAL_VERSION} sweep "
                "journal; rerun without --resume"
            )
        if header.get("fingerprint") != self.fingerprint:
            raise ConfigurationError(
                f"journal {self.path} belongs to a different sweep plan "
                "(spec, policies, or cells changed); rerun without "
                "--resume or point --out elsewhere"
            )
        for line in lines[1:]:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A killed run can leave one torn trailing line; the
                # shard it described simply reruns.
                continue
            if record.get("kind") != "shard":
                continue
            for entry in record.get("entries", ()):
                self._completed[entry["key"]] = protocol.decode_result(
                    entry["result"]
                )

    def __len__(self) -> int:
        return len(self._completed)

    def lookup(self, key: str) -> RunResult | None:
        """The journaled result for one cell key, if it completed."""
        return self._completed.get(key)

    def record(self, spec: ShardSpec, result: ShardResult) -> None:
        """Append one completed shard (flushed before returning)."""
        entries = [
            {
                "key": cell_key(spec.policy, cell),
                "result": protocol.encode_result(run),
            }
            for cell, run in zip(spec.cells, result.results)
        ]
        line = json.dumps(
            {"kind": "shard", "shard": spec.key, "entries": entries},
            separators=(",", ":"),
        )
        with self.path.open("a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        for entry, run in zip(entries, result.results):
            self._completed[entry["key"]] = run


def execute_cells(
    cells: Sequence,
    *,
    backend: ExecutionBackend,
    workers: int,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    on_complete: Callable[[ShardSpec, ShardResult], None] | None = None,
) -> list[RunResult]:
    """Plan, dispatch, retry, and reassemble one grid of cells.

    The single engine behind ``run_cells`` and ``run_sweep``: shards the
    grid by stream signature for ``workers``, runs the shards through
    ``backend`` under a retrying :class:`Scheduler`, restores submission
    order from the carried indices, and folds worker profile snapshots
    into the parent's active profiler.  Results are bit-identical across
    backends and worker counts.
    """
    cells = list(cells)
    for cell in cells:
        if not isinstance(cell, CELL_TYPES):
            raise ConfigurationError(
                f"unknown grid cell type {type(cell)!r}"
            )
    if not cells:
        return []
    multiprocess = backend.name != "serial"
    if multiprocess:
        # Parent-side pretraining warms the in-process caches forked pool
        # workers inherit and the on-disk tier subprocess workers read.
        warm_model_caches(cells)
    profiler = profiling.active()
    specs = make_shard_specs(
        cells,
        workers if multiprocess else 1,
        active_policy().name,
        # Serial shards run under the parent profiler directly; only
        # other-process shards profile themselves and ship snapshots.
        profile=multiprocess and profiler is not None,
        cache_root=os.environ.get(CACHE_ENV),
    )
    scheduler = Scheduler(
        backend, max_attempts=max_attempts, on_complete=on_complete
    )
    shard_results = scheduler.run(specs)
    results: list[RunResult | None] = [None] * len(cells)
    for spec, shard_result in zip(specs, shard_results):
        for index, run in zip(spec.indices, shard_result.results):
            results[index] = run
        if profiler is not None and shard_result.profile:
            # Worker phase seconds fold into the parent profile, so
            # --profile composes with every multi-process backend
            # (totals become CPU seconds across processes).
            profiler.merge(shard_result.profile)
    return results  # type: ignore[return-value]
