"""Deterministic fault injection: the dispatch layer's correctness tool.

Fault tolerance that is only exercised by real outages is fault tolerance
that silently rots.  This module generalizes the original one-trick
``REPRO_EXEC_DIE_TOKEN`` hook into a :class:`FaultPlan`: a small JSON
document describing *which* faults to inject (and how many times), armed
on the filesystem so that exactly-once semantics hold across an entire
fleet of worker processes, local or remote.

Fault kinds (:data:`FAULT_KINDS`):

- ``die-once``            the claiming worker ``os._exit``\\ s mid-shard --
  the SIGKILL/OOM shape.  Detected as pipe-EOF (subprocess), a broken
  pool (process), or an expired lease (queue).
- ``hang``                the claiming worker goes silent without dying --
  the wedged-ssh/stalled-host shape.  Detected by the
  ``REPRO_SHARD_TIMEOUT`` watchdog (subprocess) or lease expiry (queue).
- ``slow-worker``         the claiming worker sleeps a seeded delay, then
  completes normally.  Must *not* trip any failure path; exists so tests
  and benchmarks can bound straggler overhead.
- ``corrupt-result``      the worker completes the shard but mangles its
  reply (seeded choice of truncation or byte garbling).  The parent must
  reject the reply before journaling and retry the shard elsewhere.
- ``torn-journal-write``  the *parent* is "killed" halfway through
  appending a journal line: the prefix is written and flushed, then the
  run aborts.  ``--resume`` must tolerate the torn tail.
- ``daemon-kill``         the resident fleet daemon ``os._exit``\\ s
  immediately *after* fsyncing a session-journal window record -- the
  hardest instant for crash recovery, because the restart must treat that
  window as done and everything in flight after it as never-happened.
  Target a specific window via ``match`` (contexts look like
  ``<stream key>|w<index>``).

Arming and claiming:

:func:`save_plan` writes the plan JSON *and* an adjacent token directory
(``<plan>.tokens/``) holding one file per scheduled firing.  Every
injection site calls back into this module; firing a fault requires
*claiming* a token via ``os.unlink``, which the filesystem makes atomic
and exactly-once across any number of processes -- the same trick the
original die token used.  Workers find the plan through
``$REPRO_FAULT_PLAN`` (inherited or shipped via the worker environment).

Determinism: which *worker* claims a given token depends on scheduling,
but every observable fault behavior -- the slow-worker delay, the
corruption mode, the torn prefix length -- derives from
``sha256(seed, entry, firing)``, so a plan replays the same faults with
the same parameters every run, and the final documents are required to
be bit-identical to a fault-free run's.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.errors import ConfigurationError

__all__ = [
    "DIE_EXIT_CODE",
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FAULT_TOKEN_ENV",
    "FaultEntry",
    "FaultPlan",
    "consume_die_token",
    "corrupt_reply",
    "daemon_fault",
    "journal_fault",
    "load_plan",
    "on_claim",
    "reply_fault",
    "save_plan",
    "tokens_dir",
]

#: Environment variable naming the armed fault-plan JSON file.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Legacy single-fault hook: when this variable names an existing file,
#: the next worker to claim (unlink) it dies.  Kept working verbatim --
#: CI recipes and operators' muscle memory depend on it -- and subsumed
#: by a one-entry ``die-once`` plan.
FAULT_TOKEN_ENV = "REPRO_EXEC_DIE_TOKEN"

#: The recognized fault kinds, in documentation order.
FAULT_KINDS = (
    "die-once",
    "hang",
    "slow-worker",
    "corrupt-result",
    "torn-journal-write",
    "daemon-kill",
)

#: Exit status of a worker killed by ``die-once`` (distinctive in logs).
DIE_EXIT_CODE = 13

#: How long a ``hang`` sleeps: effectively forever next to any sane
#: watchdog/lease TTL, finite so an unsupervised test cannot wedge a box.
HANG_SLEEP_S = 3600.0

#: The corruption modes ``corrupt-result`` chooses among (seeded).
CORRUPT_MODES = ("truncate", "garble")


@dataclass(frozen=True)
class FaultEntry:
    """One scheduled fault.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        times: How many firings to arm (one token each).
        match: Substring the injection-site context (shard key or journal
            line) must contain for this entry to be eligible; empty
            matches everything.
        delay_s: Fixed delay for ``slow-worker`` (None = seeded default).
    """

    kind: str
    times: int = 1
    match: str = ""
    delay_s: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {', '.join(FAULT_KINDS)}"
            )
        if self.times < 1:
            raise ConfigurationError(
                f"fault times must be >= 1, got {self.times}"
            )
        if self.delay_s is not None and self.delay_s < 0:
            raise ConfigurationError(
                f"fault delay_s must be >= 0, got {self.delay_s}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of faults to inject into one run."""

    entries: tuple[FaultEntry, ...]
    seed: int = 0

    @staticmethod
    def from_mapping(data: dict) -> "FaultPlan":
        """Validate and build a plan from parsed JSON."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"fault plan must be a JSON object, got {type(data).__name__}"
            )
        raw_entries = data.get("entries", [])
        if not isinstance(raw_entries, list) or not raw_entries:
            raise ConfigurationError(
                "fault plan needs a non-empty 'entries' list"
            )
        entries = []
        for raw in raw_entries:
            if isinstance(raw, str):
                raw = {"kind": raw}
            if not isinstance(raw, dict):
                raise ConfigurationError(
                    f"fault entry must be an object or kind string, got {raw!r}"
                )
            unknown = set(raw) - {"kind", "times", "match", "delay_s"}
            if unknown:
                raise ConfigurationError(
                    f"unknown fault entry fields: {', '.join(sorted(unknown))}"
                )
            entries.append(
                FaultEntry(
                    kind=raw.get("kind", ""),
                    times=int(raw.get("times", 1)),
                    match=str(raw.get("match", "")),
                    delay_s=raw.get("delay_s"),
                )
            )
        seed = data.get("seed", 0)
        if not isinstance(seed, int):
            raise ConfigurationError(f"fault plan seed must be an int, got {seed!r}")
        return FaultPlan(entries=tuple(entries), seed=seed)

    def as_mapping(self) -> dict:
        return {
            "seed": self.seed,
            "entries": [
                {
                    "kind": entry.kind,
                    "times": entry.times,
                    "match": entry.match,
                    "delay_s": entry.delay_s,
                }
                for entry in self.entries
            ],
        }


def tokens_dir(plan_path: str | Path) -> Path:
    """Where a plan's claim tokens live (adjacent to the plan file)."""
    plan_path = Path(plan_path)
    return plan_path.with_name(plan_path.name + ".tokens")


def save_plan(plan: FaultPlan, path: str | Path) -> Path:
    """Write the plan JSON and arm its claim tokens; returns the path.

    Arming writes one token file per scheduled firing under
    :func:`tokens_dir`.  Re-saving re-arms: leftover tokens from a
    previous run are cleared first, so a plan never fires stale faults.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(plan.as_mapping(), indent=2) + "\n")
    tokens = tokens_dir(path)
    if tokens.exists():
        for stale in tokens.iterdir():
            stale.unlink()
    tokens.mkdir(parents=True, exist_ok=True)
    for index, entry in enumerate(plan.entries):
        for firing in range(entry.times):
            (tokens / f"{index:03d}.{firing:03d}.token").touch()
    return path


def load_plan(path: str | Path) -> FaultPlan:
    """Parse and validate a fault-plan JSON file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise ConfigurationError(f"fault plan {path} does not exist")
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"fault plan {path} is not valid JSON: {exc}")
    return FaultPlan.from_mapping(data)


def _active_plan() -> tuple[FaultPlan, Path] | None:
    """The armed plan named by ``$REPRO_FAULT_PLAN``, if any."""
    raw = os.environ.get(FAULT_PLAN_ENV, "").strip()
    if not raw:
        return None
    path = Path(raw)
    return load_plan(path), path


def _fraction(seed: int, index: int, firing: int, salt: str) -> float:
    """A deterministic value in [0, 1) for one (entry, firing) pair."""
    digest = hashlib.sha256(
        f"{seed}|{index}|{firing}|{salt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def _claim(plan_path: Path, index: int, firing: int) -> bool:
    """Atomically claim one firing token; True exactly once fleet-wide."""
    token = tokens_dir(plan_path) / f"{index:03d}.{firing:03d}.token"
    try:
        os.unlink(token)
    except OSError:
        return False
    return True


def _claim_kind(kinds: tuple[str, ...], context: str):
    """Claim the first armed firing among ``kinds`` matching ``context``.

    Returns ``(entry, index, firing)`` or None.  Tokens are probed in
    plan order, lowest firing first, so a plan fires its entries in the
    order they were written.
    """
    active = _active_plan()
    if active is None:
        return None
    plan, path = active
    for index, entry in enumerate(plan.entries):
        if entry.kind not in kinds:
            continue
        if entry.match and entry.match not in context:
            continue
        for firing in range(entry.times):
            if _claim(path, index, firing):
                return plan, entry, index, firing
    return None


def consume_die_token() -> None:
    """The legacy hook: die abruptly -- once, fleet-wide -- if armed.

    The unlink is the atomic claim: exactly one process across the fleet
    wins it and exits without replying, which is precisely the mid-shard
    crash the scheduler's retry path must absorb.
    """
    path = os.environ.get(FAULT_TOKEN_ENV)
    if not path:
        return
    try:
        os.unlink(path)
    except OSError:
        return
    os._exit(DIE_EXIT_CODE)


def on_claim(context: str, before_hang: Callable[[], None] | None = None) -> None:
    """The worker-side injection point, called as a shard is claimed.

    Fires at most one of ``die-once`` / ``hang`` / ``slow-worker`` per
    claim (plus the legacy die token).  ``before_hang`` lets a transport
    silence its liveness signal first -- the queue worker stops its
    heartbeat thread, because a genuinely wedged process stops beating
    too, and a hang that keeps heartbeating would never be detected.
    """
    consume_die_token()
    claimed = _claim_kind(("die-once", "hang", "slow-worker"), context)
    if claimed is None:
        return
    plan, entry, index, firing = claimed
    if entry.kind == "die-once":
        os._exit(DIE_EXIT_CODE)
    if entry.kind == "hang":
        if before_hang is not None:
            before_hang()
        time.sleep(HANG_SLEEP_S)
        # Unreachable under any sane watchdog/TTL; if truly unsupervised,
        # wake up and keep serving rather than leaking a zombie forever.
        return
    # slow-worker: a seeded straggler delay, then business as usual.
    delay = entry.delay_s
    if delay is None:
        delay = 0.05 + 0.25 * _fraction(plan.seed, index, firing, "slow")
    time.sleep(delay)


def reply_fault(context: str) -> str | None:
    """Claim a ``corrupt-result`` firing; returns the corruption mode.

    The mode (one of :data:`CORRUPT_MODES`) is a seeded choice, so a
    given plan corrupts the same way every run.  None when nothing fires.
    """
    claimed = _claim_kind(("corrupt-result",), context)
    if claimed is None:
        return None
    plan, _entry, index, firing = claimed
    pick = _fraction(plan.seed, index, firing, "corrupt")
    return CORRUPT_MODES[int(pick * len(CORRUPT_MODES))]


def corrupt_reply(message: dict, mode: str) -> dict:
    """Apply one corruption mode to an encoded ``result`` message.

    ``truncate`` drops the final per-cell result (the parent's
    length-vs-spec check must catch it); ``garble`` replaces a result's
    array payload with bytes that are not base64 (the decode must fail
    before anything reaches a journal).  Both leave the message *well-
    formed JSON* -- the dangerous corruptions are the ones that still
    parse.
    """
    message = dict(message)
    results = list(message.get("results", ()))
    if mode == "truncate" and results:
        message["results"] = results[:-1]
        return message
    if results:
        first = dict(results[0])
        times = dict(first.get("times", {}))
        times["data"] = "!!not-base64!!"
        first["times"] = times
        results[0] = first
        message["results"] = results
        return message
    # Nothing to mangle (empty shard): make the payload shape invalid.
    message["results"] = [{"corrupt": True}]
    return message


def daemon_fault(context: str = "") -> None:
    """Claim a ``daemon-kill`` firing; dies abruptly when one is armed.

    Called by the session journal immediately after a window record is
    fully fsynced: the ``os._exit`` is the SIGKILL shape (no atexit, no
    finally blocks, no flushing), landing at the exact instant recovery
    is hardest.  A no-op when no plan is armed or nothing matches.
    """
    claimed = _claim_kind(("daemon-kill",), context)
    if claimed is None:
        return
    os._exit(DIE_EXIT_CODE)


def journal_fault(context: str = "") -> float | None:
    """Claim a ``torn-journal-write`` firing.

    Returns the seeded fraction of the line to write before "dying"
    (in (0, 1)), or None when nothing fires.  The journal writes that
    prefix, flushes it to disk, and aborts the run -- exactly the state
    a kill mid-``write`` leaves behind.
    """
    claimed = _claim_kind(("torn-journal-write",), context)
    if claimed is None:
        return None
    plan, _entry, index, firing = claimed
    return 0.1 + 0.8 * _fraction(plan.seed, index, firing, "torn")
