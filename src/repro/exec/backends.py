"""Execution backends: where a planned shard actually runs.

An :class:`ExecutionBackend` takes a batch of
:class:`~repro.exec.shard.ShardSpec`\\ s and returns one outcome per spec
-- a :class:`~repro.exec.shard.ShardResult` or a
:class:`~repro.exec.shard.ShardFailure` *value* (never an opaque transport
exception), aligned with the input.  Returning failures as values is what
lets the :class:`~repro.exec.scheduler.Scheduler` retry individual shards
without tearing down the batch.

Four transports:

- :class:`SerialBackend` -- in-process, the exact code path the serial
  experiments have always used.
- :class:`ProcessPoolBackend` -- the historical ``--jobs N`` process pool,
  moved here from ``core/parallel.py``; ``BrokenProcessPool`` is mapped to
  per-shard failures and the pool is rebuilt for the next round.
- :class:`SubprocessWorkerBackend` -- long-lived ``python -m repro worker``
  children speaking the JSON-lines shard protocol over stdio.  Dead
  workers are retired and replaced (bounded respawn budget); the launch
  command is overridable (``$REPRO_WORKER_CMD``), which is all an
  ``ssh host python -m repro worker`` deployment needs.
- :class:`~repro.exec.queue.QueueBackend` -- the pull model: shards become
  claimable message files in a queue directory, workers claim them by
  atomic rename and heartbeat their leases, and an expired lease (not a
  pipe) is the death signal.  The only transport that survives SIGKILLed
  workers it did not spawn, and the one external workers can attach to
  mid-sweep.

Backend selection is ambient, mirroring the numeric policy: an explicit
argument wins, then a :func:`use_backend` override, then ``$REPRO_BACKEND``,
then the historical default (serial at ``jobs <= 1``, the process pool
above).  Every backend produces bit-identical results at any worker count
-- cells seed their own RNGs, so *where* a shard runs can never change
*what* it computes.
"""

from __future__ import annotations

import os
import queue
import shlex
import subprocess
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Protocol, Sequence, runtime_checkable

from repro.errors import ConfigurationError, ProtocolError
from repro.exec import faults, protocol
from repro.exec.shard import (
    ShardFailure,
    ShardResult,
    ShardSpec,
    cell_label,
    execute_shard,
    run_spec_cells,
)
from repro.numeric import use_policy

__all__ = [
    "BACKEND_ENV",
    "BACKEND_KINDS",
    "WORKER_CMD_ENV",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "SubprocessWorkerBackend",
    "active_backend_spec",
    "make_backend",
    "parse_backend",
    "use_backend",
]

#: Environment variable selecting the ambient backend spec
#: (``serial`` | ``process[:N]`` | ``subprocess[:N]`` | ``queue[:N]``).
BACKEND_ENV = "REPRO_BACKEND"

#: Environment variable replacing the worker launch command (shlex-split);
#: e.g. ``REPRO_WORKER_CMD="ssh edge-host python -m repro worker"``.
WORKER_CMD_ENV = "REPRO_WORKER_CMD"

#: Environment variable bounding how long one worker may sit silent on a
#: single shard (seconds; unset = no watchdog).  A worker past the
#: deadline is killed, which converts a *hang* -- a wedged ssh channel, a
#: stalled remote host -- into the worker-death failure the scheduler
#: already knows how to retry.
SHARD_TIMEOUT_ENV = "REPRO_SHARD_TIMEOUT"

#: The recognized backend kinds, in documentation order.
BACKEND_KINDS = ("serial", "process", "subprocess", "queue")


@runtime_checkable
class ExecutionBackend(Protocol):
    """The contract every transport implements.

    ``run`` executes a batch of shards and returns outcomes aligned with
    the input -- a :class:`ShardResult` per success, a :class:`ShardFailure`
    *value* per failure.  ``excluded`` names workers the scheduler has
    seen fail; transports with identifiable workers must not hand them
    further shards.  ``close`` releases pools/children and must be
    idempotent.
    """

    name: str

    def run(
        self,
        specs: Sequence[ShardSpec],
        excluded: frozenset[str] = frozenset(),
    ) -> list:
        ...

    def close(self) -> None:
        ...


class SerialBackend:
    """Run shards in this process -- the historical serial code path.

    The ambient profiler (if any) records phases directly, so shard
    results never carry *profile* snapshots (incremental run snapshots
    do ride along); exceptions propagate exactly as the serial
    experiments have always surfaced them.
    """

    name = "serial"

    def run(
        self,
        specs: Sequence[ShardSpec],
        excluded: frozenset[str] = frozenset(),
    ) -> list:
        outcomes = []
        for spec in specs:
            started = time.perf_counter()
            with use_policy(spec.policy):
                (
                    results,
                    run_snapshot,
                    snapshots,
                    cluster_state,
                ) = run_spec_cells(spec)
            outcomes.append(
                ShardResult(
                    key=spec.key,
                    results=tuple(results),
                    snapshot=run_snapshot,
                    cluster_state=cluster_state,
                    snapshots=snapshots,
                    wall_s=time.perf_counter() - started,
                )
            )
        return outcomes

    def close(self) -> None:
        pass


def _pool_run_shard(spec: ShardSpec) -> tuple:
    """Pool-worker entry point (module-level so it pickles)."""
    faults.on_claim(spec.key)
    started = time.perf_counter()
    (
        results,
        profile_snapshot,
        run_snapshot,
        snapshots,
        cluster_state,
    ) = execute_shard(spec)
    wall_s = time.perf_counter() - started
    # Pool replies are in-process Python objects, not encoded bytes, so
    # there are no bytes to garble: a ``corrupt-result`` firing drops the
    # last per-cell result instead, which the parent's length-vs-spec
    # check must reject before anything reaches a journal.
    if faults.reply_fault(spec.key) is not None:
        results = results[:-1]
    return results, profile_snapshot, run_snapshot, snapshots, cluster_state, wall_s


class ProcessPoolBackend:
    """The historical ``--jobs N`` pool, with typed per-shard failure.

    A dying worker breaks a ``ProcessPoolExecutor`` wholesale: every
    pending future raises ``BrokenProcessPool``.  Those shards come back
    as :class:`ShardFailure` values (naming their cells) and the broken
    pool is discarded, so the scheduler's next attempt runs on a fresh
    one.  Pool workers are anonymous, so ``excluded`` has nothing to pin.
    """

    name = "process"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"process backend needs >= 1 worker, got {workers}"
            )
        self.workers = workers
        self._pool: ProcessPoolExecutor | None = None

    def run(
        self,
        specs: Sequence[ShardSpec],
        excluded: frozenset[str] = frozenset(),
    ) -> list:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        futures = [
            self._pool.submit(_pool_run_shard, spec) for spec in specs
        ]
        outcomes = []
        broken = False
        for spec, future in zip(specs, futures):
            try:
                (
                    results,
                    profile_snapshot,
                    run_snapshot,
                    snapshots,
                    cluster_state,
                    wall_s,
                ) = future.result()
            except BrokenProcessPool as exc:
                broken = True
                outcomes.append(
                    ShardFailure(
                        "a pool worker process died executing the shard",
                        shard_key=spec.key,
                        cells=tuple(cell_label(c) for c in spec.cells),
                        cause=type(exc).__name__,
                    )
                )
            except Exception as exc:
                # A *cell* raised inside a healthy worker: deterministic,
                # so recomputing it would reproduce the same exception.
                # The (unpickled) original rides along so the scheduler
                # can re-raise it -- callers see the same exception type
                # the serial path has always produced.
                outcomes.append(
                    ShardFailure(
                        "shard raised inside a pool worker",
                        shard_key=spec.key,
                        cells=tuple(cell_label(c) for c in spec.cells),
                        cause=f"{type(exc).__name__}: {exc}",
                        retriable=False,
                        cause_exception=exc,
                    )
                )
            else:
                if len(results) != len(spec.cells):
                    # A short reply must never be journaled as a completed
                    # shard; retriable -- the next attempt recomputes it
                    # whole on a fresh pool worker.
                    outcomes.append(
                        ShardFailure(
                            f"pool worker returned {len(results)} results "
                            f"for a {len(spec.cells)}-cell shard",
                            shard_key=spec.key,
                            cells=tuple(
                                cell_label(c) for c in spec.cells
                            ),
                        )
                    )
                    continue
                outcomes.append(
                    ShardResult(
                        key=spec.key,
                        results=tuple(results),
                        profile=profile_snapshot,
                        snapshot=run_snapshot,
                        cluster_state=cluster_state,
                        snapshots=snapshots,
                        wall_s=wall_s,
                    )
                )
        if broken:
            self.close()
        return outcomes

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


def default_worker_command() -> list[str]:
    """The shard-worker launch command (``$REPRO_WORKER_CMD`` overrides).

    The override is how the same backend dispatches over a remote
    transport: ``REPRO_WORKER_CMD="ssh host python -m repro worker"``
    gives every worker slot a remote child speaking the identical
    protocol over the ssh-forwarded stdio.
    """
    override = os.environ.get(WORKER_CMD_ENV, "").strip()
    if override:
        return shlex.split(override)
    return [sys.executable, "-m", "repro", "worker"]


def _worker_env() -> dict[str, str]:
    """Child environment: inherit, plus make ``repro`` importable."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    current = env.get("PYTHONPATH", "")
    if src not in current.split(os.pathsep):
        env["PYTHONPATH"] = (
            src + os.pathsep + current if current else src
        )
    return env


def _shard_timeout_from_env() -> float | None:
    raw = os.environ.get(SHARD_TIMEOUT_ENV, "").strip()
    if not raw:
        return None
    try:
        timeout = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{SHARD_TIMEOUT_ENV} must be a positive number of seconds, "
            f"got {raw!r}"
        )
    if timeout <= 0:
        raise ConfigurationError(
            f"{SHARD_TIMEOUT_ENV} must be a positive number of seconds, "
            f"got {raw!r}"
        )
    return timeout


class _WorkerHandle:
    """One live worker child plus its protocol channel."""

    def __init__(
        self,
        slot: int,
        command: list[str],
        timeout_s: float | None = None,
    ) -> None:
        self.slot = slot
        self.timeout_s = timeout_s
        try:
            self.proc = subprocess.Popen(
                command,
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                text=True,
                env=_worker_env(),
            )
        except OSError as exc:
            raise ShardFailure(
                f"could not launch worker command {command!r}",
                cause=str(exc),
            )
        self.id = f"w{slot}:pid{self.proc.pid}"
        try:
            hello = self._read_reply()
        except (ProtocolError, OSError) as exc:
            # An ssh banner/MOTD or a version-skewed peer on the line:
            # as much a failed handshake as silence, and it must surface
            # as the typed failure serve() knows how to absorb.
            self.kill()
            raise ShardFailure(
                "worker did not complete the protocol handshake",
                worker=self.id,
                cause=str(exc),
            )
        if hello is None or hello.get("kind") != "hello":
            self.kill()
            raise ShardFailure(
                "worker did not complete the protocol handshake",
                worker=self.id,
            )

    def _read_reply(self) -> dict | None:
        """A blocking protocol read, bounded by the shard watchdog.

        With a timeout armed, a worker that goes *silent* (wedged ssh
        channel, stalled host) is killed at the deadline; the reader then
        unblocks with EOF and the normal worker-death handling -- typed
        failure, retirement, retry elsewhere -- takes over.
        """
        if self.timeout_s is None:
            return protocol.read_message(self.proc.stdout)
        watchdog = threading.Timer(self.timeout_s, self.kill)
        watchdog.daemon = True
        watchdog.start()
        try:
            return protocol.read_message(self.proc.stdout)
        finally:
            watchdog.cancel()

    def run_shard(self, spec: ShardSpec) -> ShardResult:
        cells = tuple(cell_label(c) for c in spec.cells)
        try:
            protocol.write_message(
                self.proc.stdin, protocol.encode_shard_request(spec)
            )
            message = self._read_reply()
        except (BrokenPipeError, OSError) as exc:
            raise ShardFailure(
                "worker pipe broke mid-shard",
                shard_key=spec.key,
                cells=cells,
                worker=self.id,
                cause=str(exc),
            )
        except ProtocolError as exc:
            raise ShardFailure(
                "worker spoke an invalid protocol message",
                shard_key=spec.key,
                cells=cells,
                worker=self.id,
                cause=str(exc),
            )
        if message is None:
            code = self.proc.poll()
            raise ShardFailure(
                f"worker exited mid-shard (exit code {code})",
                shard_key=spec.key,
                cells=cells,
                worker=self.id,
            )
        if message.get("kind") == "error":
            # The worker is healthy -- it replied in protocol -- and the
            # shard's exception is deterministic: not a transport fault.
            raise ShardFailure(
                "shard raised inside the worker",
                shard_key=spec.key,
                cells=cells,
                worker=self.id,
                cause=str(message.get("error")),
                retriable=False,
            )
        if message.get("kind") != "result" or message.get("id") != spec.key:
            raise ShardFailure(
                "worker replied out of protocol "
                f"(kind={message.get('kind')!r}, id={message.get('id')!r})",
                shard_key=spec.key,
                cells=cells,
                worker=self.id,
            )
        try:
            decoded = protocol.decode_shard_result(message)
        except ProtocolError as exc:
            raise ShardFailure(
                "worker result payload undecodable",
                shard_key=spec.key,
                cells=cells,
                worker=self.id,
                cause=str(exc),
            )
        if len(decoded.results) != len(spec.cells):
            # A truncated reply must never be journaled as a completed
            # shard; treat it as out-of-protocol and let the retry path
            # recompute the shard whole.
            raise ShardFailure(
                f"worker returned {len(decoded.results)} results for a "
                f"{len(spec.cells)}-cell shard",
                shard_key=spec.key,
                cells=cells,
                worker=self.id,
            )
        return decoded

    def shutdown(self) -> None:
        """Ask the worker to drain and exit; kill it if it lingers."""
        try:
            protocol.write_message(
                self.proc.stdin,
                {"v": protocol.PROTOCOL_VERSION, "kind": "shutdown"},
            )
        except (BrokenPipeError, OSError, ValueError):
            pass
        try:
            self.proc.wait(timeout=5)
        except subprocess.TimeoutExpired:
            self.kill()

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
        self.proc.wait()


class SubprocessWorkerBackend:
    """Dispatch shards to ``python -m repro worker`` children over stdio.

    Workers are spawned lazily (one per slot, up to ``workers``) and kept
    alive across batches; each serves one shard at a time over the
    JSON-lines protocol.  A worker that dies or mis-speaks is retired and
    its slot respawned on next use, up to a bounded respawn budget --
    after that the slot reports failures instead of spinning up children
    forever.  Shard payloads carry policy and cache root explicitly, so a
    worker needs no ambient state beyond an importable ``repro``; point
    ``command`` (or ``$REPRO_WORKER_CMD``) at ``ssh host python -m repro
    worker`` and the same backend runs multi-node.
    """

    name = "subprocess"

    def __init__(
        self,
        workers: int,
        command: list[str] | None = None,
        max_respawns: int | None = None,
        shard_timeout_s: float | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"subprocess backend needs >= 1 worker, got {workers}"
            )
        self.workers = workers
        self.command = list(command) if command else None
        self.max_respawns = (
            max_respawns if max_respawns is not None else workers + 4
        )
        self.shard_timeout_s = (
            shard_timeout_s
            if shard_timeout_s is not None
            else _shard_timeout_from_env()
        )
        self._handles: dict[int, _WorkerHandle] = {}
        self._spawned = 0
        self._lock = threading.Lock()

    def _spawn(self, slot: int) -> _WorkerHandle | None:
        """A live handle for ``slot``, or None once the budget is spent."""
        with self._lock:
            handle = self._handles.get(slot)
            if handle is not None and handle.proc.poll() is None:
                return handle
            if self._spawned >= self.workers + self.max_respawns:
                return None
            self._spawned += 1
        command = self.command or default_worker_command()
        handle = _WorkerHandle(slot, command, self.shard_timeout_s)
        with self._lock:
            self._handles[slot] = handle
        return handle

    def _retire(self, slot: int) -> None:
        with self._lock:
            handle = self._handles.pop(slot, None)
        if handle is not None:
            handle.kill()

    def run(
        self,
        specs: Sequence[ShardSpec],
        excluded: frozenset[str] = frozenset(),
    ) -> list:
        if not specs:
            return []
        # Workers the scheduler has seen fail never get another shard.
        for slot, handle in list(self._handles.items()):
            if handle.id in excluded:
                self._retire(slot)
        outcomes: list = [None] * len(specs)
        work: queue.SimpleQueue = queue.SimpleQueue()
        for item in enumerate(specs):
            work.put(item)
        slots = min(self.workers, len(specs))
        for _ in range(slots):
            work.put(None)

        def serve(slot: int) -> None:
            while True:
                item = work.get()
                if item is None:
                    return
                index, spec = item
                try:
                    handle = self._spawn(slot)
                except ShardFailure as failure:
                    # Spawn/handshake failures happen before the shard is
                    # dispatched; still name the cells left unserved.
                    outcomes[index] = ShardFailure(
                        failure.message,
                        shard_key=spec.key,
                        cells=tuple(cell_label(c) for c in spec.cells),
                        worker=failure.worker,
                        cause=failure.cause,
                    )
                    continue
                if handle is None:
                    outcomes[index] = ShardFailure(
                        "no live workers remaining "
                        f"(respawn budget {self.max_respawns} exhausted)",
                        shard_key=spec.key,
                        cells=tuple(cell_label(c) for c in spec.cells),
                    )
                    continue
                try:
                    outcomes[index] = handle.run_shard(spec)
                except ShardFailure as failure:
                    outcomes[index] = failure
                    if failure.retriable:
                        # Transport fault: the worker is dead or talking
                        # garbage.  A non-retriable failure came from a
                        # healthy worker that keeps serving.
                        self._retire(slot)

        threads = [
            threading.Thread(target=serve, args=(slot,), daemon=True)
            for slot in range(slots)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return outcomes

    def close(self) -> None:
        with self._lock:
            handles = list(self._handles.values())
            self._handles.clear()
        for handle in handles:
            handle.shutdown()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass


def parse_backend(spec: str) -> tuple[str, int | None]:
    """``"kind[:N]"`` -> ``(kind, workers-or-None)``; validated.

    ``serial`` takes no worker count; ``process``/``subprocess`` accept an
    optional positive ``:N`` (otherwise the caller's ``jobs`` decides).
    """
    if not isinstance(spec, str):
        raise ConfigurationError(f"backend spec must be a string, got {spec!r}")
    kind, sep, count = spec.strip().lower().partition(":")
    if kind not in BACKEND_KINDS:
        raise ConfigurationError(
            f"unknown backend {kind!r}; known: {', '.join(BACKEND_KINDS)}"
        )
    if not sep:
        return kind, None
    if kind == "serial":
        raise ConfigurationError(
            "the serial backend takes no worker count"
        )
    try:
        workers = int(count)
    except ValueError:
        raise ConfigurationError(
            f"backend worker count must be an integer, got {count!r}"
        )
    if workers < 1:
        raise ConfigurationError(
            f"backend worker count must be >= 1, got {workers}"
        )
    return kind, workers


def make_backend(
    spec: str,
    default_workers: int = 1,
    queue_dir: str | None = None,
) -> ExecutionBackend:
    """Instantiate a backend from ``"kind[:N]"``.

    ``default_workers`` (typically the caller's resolved ``jobs``) fills
    in when the spec carries no ``:N`` of its own.  ``queue_dir`` pins
    the queue backend's directory (None = a private temp queue); other
    kinds ignore it.
    """
    kind, workers = parse_backend(spec)
    if workers is None:
        workers = max(1, default_workers)
    if kind == "serial":
        return SerialBackend()
    if kind == "process":
        return ProcessPoolBackend(workers)
    if kind == "queue":
        from repro.exec.queue import QueueBackend

        return QueueBackend(workers, directory=queue_dir)
    return SubprocessWorkerBackend(workers)


def resolve_backend(backend, jobs: int, num_cells: int, queue_dir: str | None = None):
    """Apply the selection precedence once, for every entry point.

    Precedence: explicit ``backend`` (spec string or instance) >
    :func:`use_backend` override > ``$REPRO_BACKEND`` > the historical
    default (serial at ``jobs <= 1`` or a single-cell grid, the local
    process pool above).  Returns ``(instance, planning worker count,
    owned)`` -- ``owned`` tells the caller whether it must ``close()``
    the instance (specs are instantiated here; caller-constructed
    instances stay the caller's to manage).  ``queue_dir`` routes a
    spec-instantiated queue backend's directory (the sweep runner pins it
    under ``--out`` so external workers can find it).
    """
    spec = backend if backend is not None else active_backend_spec()
    if spec is None:
        spec = "serial" if jobs <= 1 or num_cells <= 1 else "process"
    if isinstance(spec, str):
        instance = make_backend(spec, default_workers=jobs, queue_dir=queue_dir)
        owned = True
    else:
        instance = spec
        owned = False
    workers = getattr(instance, "workers", 1)
    return instance, max(1, workers), owned


_override: ContextVar[str | None] = ContextVar(
    "repro_exec_backend", default=None
)


def active_backend_spec() -> str | None:
    """The ambient backend spec: override > ``$REPRO_BACKEND`` > None.

    None means "no preference": ``run_cells`` keeps its historical rule
    (serial at ``jobs <= 1``, the process pool above).
    """
    override = _override.get()
    if override is not None:
        return override
    env = os.environ.get(BACKEND_ENV, "").strip()
    if env:
        parse_backend(env)  # fail fast on garbage in the environment
        return env
    return None


@contextmanager
def use_backend(spec: str):
    """Force a backend spec for the dynamic extent of the ``with`` block.

    The CLI's ``--backend`` flag installs one of these around the whole
    command, so experiment runners that simply call ``run_cells(cells,
    jobs=...)`` pick the transport up ambiently -- no per-runner plumbing.
    """
    parse_backend(spec)
    token = _override.set(spec)
    try:
        yield spec
    finally:
        _override.reset(token)
