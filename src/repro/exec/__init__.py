"""Pluggable execution: shards, transports, scheduling, and resume.

The dispatch layer extracted from ``core/parallel.py``: grids decompose
into stream-sharing :class:`~repro.exec.shard.ShardSpec`\\ s, an
:class:`~repro.exec.backends.ExecutionBackend` runs them -- in-process
(:class:`SerialBackend`), on the historical fork pool
(:class:`ProcessPoolBackend`), or over the versioned JSON-lines stdio
protocol to ``python -m repro worker`` children
(:class:`SubprocessWorkerBackend`, ssh-able via ``$REPRO_WORKER_CMD``),
or pulled from a file-system job queue with worker leases and heartbeats
(:class:`~repro.exec.queue.QueueBackend` -- the transport that survives
SIGKILLed workers and lets external ones attach mid-sweep) -- and the
:class:`~repro.exec.scheduler.Scheduler` adds bounded per-shard retry
with exponential backoff, failed-worker exclusion, poison-shard
quarantine (:class:`ShardQuarantined`), plus the :class:`SweepJournal`
that backs ``repro sweep --resume``.  The deterministic fault-injection
layer (:mod:`repro.exec.faults`) exercises every one of those paths in
tests and CI against the frozen reference digests.

Every backend is bit-identical at any worker count: cells seed their own
RNGs and shard payloads carry the numeric policy and cache root
explicitly, so *where* a shard runs never changes *what* it computes --
the frozen reference digests are checked across all three transports.

``run_cells``/``parallel_map`` (:mod:`repro.core.parallel`) remain the
stable entry points; they delegate here, selecting a backend from an
explicit argument, a :func:`use_backend` override, or ``$REPRO_BACKEND``.
"""

from repro.exec.backends import (
    BACKEND_ENV,
    BACKEND_KINDS,
    SHARD_TIMEOUT_ENV,
    WORKER_CMD_ENV,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    SubprocessWorkerBackend,
    active_backend_spec,
    make_backend,
    parse_backend,
    resolve_backend,
    use_backend,
)
from repro.exec.faults import (
    FAULT_KINDS,
    FAULT_PLAN_ENV,
    FaultEntry,
    FaultPlan,
    load_plan,
    save_plan,
)
from repro.exec.queue import (
    DEFAULT_LEASE_TTL_S,
    LEASE_TTL_ENV,
    QueueBackend,
    queue_worker_main,
)
from repro.exec.scheduler import (
    DEFAULT_BACKOFF_BASE_S,
    DEFAULT_BACKOFF_CAP_S,
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_QUARANTINE_AFTER,
    Scheduler,
    SweepJournal,
    backoff_delay,
    execute_cells,
)
from repro.exec.shard import (
    FAULT_TOKEN_ENV,
    Fig2Cell,
    ShardFailure,
    ShardQuarantined,
    ShardResult,
    ShardSpec,
    SystemCell,
    batch_signature,
    cell_batch_key,
    cell_key,
    cell_label,
    execute_shard,
    make_shard_specs,
    note_shard_observation,
    observed_cost,
    plan_shards,
    reset_observed_costs,
    run_cell,
    run_cell_incremental,
    run_shard_cells,
    run_spec_cells,
    stream_signature,
    warm_model_caches,
)

__all__ = [
    "BACKEND_ENV",
    "BACKEND_KINDS",
    "DEFAULT_BACKOFF_BASE_S",
    "DEFAULT_BACKOFF_CAP_S",
    "DEFAULT_LEASE_TTL_S",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_QUARANTINE_AFTER",
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FAULT_TOKEN_ENV",
    "ExecutionBackend",
    "FaultEntry",
    "FaultPlan",
    "Fig2Cell",
    "LEASE_TTL_ENV",
    "ProcessPoolBackend",
    "QueueBackend",
    "SHARD_TIMEOUT_ENV",
    "Scheduler",
    "SerialBackend",
    "ShardFailure",
    "ShardQuarantined",
    "ShardResult",
    "ShardSpec",
    "SubprocessWorkerBackend",
    "SweepJournal",
    "SystemCell",
    "WORKER_CMD_ENV",
    "active_backend_spec",
    "backoff_delay",
    "batch_signature",
    "cell_batch_key",
    "cell_key",
    "cell_label",
    "execute_cells",
    "execute_shard",
    "load_plan",
    "make_backend",
    "make_shard_specs",
    "note_shard_observation",
    "observed_cost",
    "parse_backend",
    "plan_shards",
    "reset_observed_costs",
    "queue_worker_main",
    "resolve_backend",
    "run_cell",
    "run_cell_incremental",
    "run_shard_cells",
    "run_spec_cells",
    "save_plan",
    "stream_signature",
    "use_backend",
    "warm_model_caches",
]
