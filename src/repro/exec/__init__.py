"""Pluggable execution: shards, transports, scheduling, and resume.

The dispatch layer extracted from ``core/parallel.py``: grids decompose
into stream-sharing :class:`~repro.exec.shard.ShardSpec`\\ s, an
:class:`~repro.exec.backends.ExecutionBackend` runs them -- in-process
(:class:`SerialBackend`), on the historical fork pool
(:class:`ProcessPoolBackend`), or over the versioned JSON-lines stdio
protocol to ``python -m repro worker`` children
(:class:`SubprocessWorkerBackend`, ssh-able via ``$REPRO_WORKER_CMD``) --
and the :class:`~repro.exec.scheduler.Scheduler` adds bounded per-shard
retry with failed-worker exclusion plus the :class:`SweepJournal` that
backs ``repro sweep --resume``.

Every backend is bit-identical at any worker count: cells seed their own
RNGs and shard payloads carry the numeric policy and cache root
explicitly, so *where* a shard runs never changes *what* it computes --
the frozen reference digests are checked across all three transports.

``run_cells``/``parallel_map`` (:mod:`repro.core.parallel`) remain the
stable entry points; they delegate here, selecting a backend from an
explicit argument, a :func:`use_backend` override, or ``$REPRO_BACKEND``.
"""

from repro.exec.backends import (
    BACKEND_ENV,
    BACKEND_KINDS,
    SHARD_TIMEOUT_ENV,
    WORKER_CMD_ENV,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    SubprocessWorkerBackend,
    active_backend_spec,
    make_backend,
    parse_backend,
    resolve_backend,
    use_backend,
)
from repro.exec.scheduler import (
    DEFAULT_MAX_ATTEMPTS,
    Scheduler,
    SweepJournal,
    execute_cells,
)
from repro.exec.shard import (
    FAULT_TOKEN_ENV,
    Fig2Cell,
    ShardFailure,
    ShardResult,
    ShardSpec,
    SystemCell,
    cell_key,
    cell_label,
    make_shard_specs,
    plan_shards,
    run_cell,
    run_shard_cells,
    stream_signature,
    warm_model_caches,
)

__all__ = [
    "BACKEND_ENV",
    "BACKEND_KINDS",
    "DEFAULT_MAX_ATTEMPTS",
    "FAULT_TOKEN_ENV",
    "ExecutionBackend",
    "Fig2Cell",
    "ProcessPoolBackend",
    "SHARD_TIMEOUT_ENV",
    "Scheduler",
    "SerialBackend",
    "ShardFailure",
    "ShardResult",
    "ShardSpec",
    "SubprocessWorkerBackend",
    "SweepJournal",
    "SystemCell",
    "WORKER_CMD_ENV",
    "active_backend_spec",
    "cell_key",
    "cell_label",
    "execute_cells",
    "make_backend",
    "make_shard_specs",
    "parse_backend",
    "plan_shards",
    "resolve_backend",
    "run_cell",
    "run_shard_cells",
    "stream_signature",
    "use_backend",
    "warm_model_caches",
]
