"""The shard worker: ``python -m repro worker``.

A long-lived child serving the JSON-lines shard protocol over stdio: read
a ``shard`` message, execute its cells under the policy (and cache root)
the payload carries, reply with a bit-exact ``result`` message -- or an
``error`` message if the shard raised, after which the worker keeps
serving (a deterministic cell bug must not look like a dead worker).

The *real* stdout belongs to the protocol: its fd is duplicated at
startup and ``sys.stdout`` is repointed at stderr, so a stray ``print``
anywhere in the simulation degrades to log noise instead of corrupting
the message stream.  That discipline is what lets the identical worker
run behind ``ssh host python -m repro worker``.

With ``--queue DIR`` the same entry point serves the *pull* model
instead: no stdio protocol, no parent pipe -- the worker claims shard
message files from a queue directory, heartbeats its leases, and posts
results back (see :mod:`repro.exec.queue`).  Any process that can reach
the directory may attach this way, mid-sweep included.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import time
import traceback

from repro.cache import CACHE_ENV
from repro.errors import ConfigurationError, ProtocolError
from repro.exec import faults, protocol
from repro.exec.shard import execute_shard

__all__ = ["GracefulShutdown", "install_graceful_shutdown", "worker_main"]


class GracefulShutdown(BaseException):
    """Raised by the SIGTERM/SIGINT handler to unwind the worker loop.

    A ``BaseException`` so that shard code catching broad ``Exception``
    (legitimately -- a cell bug must not kill the worker) cannot swallow
    a shutdown request.
    """


def install_graceful_shutdown() -> None:
    """Make SIGTERM/SIGINT raise :class:`GracefulShutdown` (main thread).

    A no-op when called off the main thread (``signal.signal`` raises
    ``ValueError`` there) -- embedded/test uses of the worker loops then
    keep the host's handlers.
    """

    def handler(signum, frame) -> None:
        raise GracefulShutdown(signal.Signals(signum).name)

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, handler)
        except ValueError:
            return


def worker_main(argv: list[str] | None = None) -> int:
    """Serve shards over stdio until ``shutdown`` or EOF."""
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description="shard worker speaking the JSON-lines protocol "
        "on stdio (launched by the subprocess backend, locally or "
        "over ssh), or pulling from a queue directory with --queue",
    )
    parser.add_argument(
        "--queue",
        metavar="DIR",
        default=None,
        help="pull shards from this queue directory instead of stdio "
        "(claim by atomic rename, heartbeat the lease, post results "
        "back); attachable to a running sweep from any host sharing "
        "the filesystem",
    )
    parser.add_argument(
        "--drain",
        action="store_true",
        help="with --queue: exit once the queue has no pending work "
        "(the natural shape for batch/k8s-style worker pods)",
    )
    # None means "use sys.argv" (direct ``python -m repro.exec.worker``
    # entry); the CLI wrapper always passes an explicit (possibly empty)
    # list.  ``argv or []`` would silently drop direct-entry arguments.
    args = parser.parse_args(argv)
    if args.drain and args.queue is None:
        parser.error("--drain requires --queue")
    if args.queue is not None:
        from repro.exec.queue import queue_worker_main

        return queue_worker_main(args.queue, drain=args.drain)
    install_graceful_shutdown()

    def send_error(channel, message_id, error, trace=None):
        protocol.write_message(
            channel,
            {
                "v": protocol.PROTOCOL_VERSION,
                "kind": "error",
                "id": message_id,
                "error": error,
                "traceback": trace,
            },
        )

    channel = os.fdopen(os.dup(sys.stdout.fileno()), "w")
    # Nothing but the protocol may reach the parent's pipe: repoint the
    # Python-level stdout *and* file descriptor 1 at stderr, so fd-level
    # writers (C extensions, os.write, child processes of cell code)
    # degrade to log noise instead of corrupting the message stream.
    sys.stdout = sys.stderr
    os.dup2(sys.stderr.fileno(), 1)
    # Shards pin the cache root per-payload; remember the worker's own
    # baseline so a cache_root-less shard falls back to it rather than
    # inheriting whatever the previous shard pinned.
    baseline_cache_root = os.environ.get(CACHE_ENV)
    protocol.write_message(
        channel,
        {
            "v": protocol.PROTOCOL_VERSION,
            "kind": "hello",
            "pid": os.getpid(),
        },
    )
    try:
        for line in sys.stdin:
            line = line.strip()
            if not line:
                continue
            try:
                message = protocol.decode_message(line)
            except ProtocolError as exc:
                send_error(channel, None, str(exc))
                continue
            kind = message.get("kind")
            if kind == "shutdown":
                break
            if kind != "shard":
                send_error(
                    channel, message.get("id"),
                    f"unexpected message kind {kind!r}",
                )
                continue
            faults.on_claim(str(message.get("id") or ""))
            try:
                spec = protocol.decode_shard_spec(message)
                if spec.cache_root is not None:
                    # The payload pins the parent's artifact-cache root
                    # so a shared-FS fleet reads one content-addressed
                    # store.
                    os.environ[CACHE_ENV] = spec.cache_root
                elif baseline_cache_root is not None:
                    os.environ[CACHE_ENV] = baseline_cache_root
                else:
                    os.environ.pop(CACHE_ENV, None)
                started = time.perf_counter()
                (
                    results,
                    profile_snapshot,
                    run_snapshot,
                    snapshots,
                    cluster_state,
                ) = execute_shard(spec)
                wall_s = time.perf_counter() - started
            except Exception as exc:
                send_error(
                    channel, message.get("id"),
                    f"{type(exc).__name__}: {exc}",
                    traceback.format_exc(),
                )
                continue
            reply = protocol.encode_shard_result(
                spec.key, results, profile_snapshot, run_snapshot,
                cluster_state=cluster_state, snapshots=snapshots,
                wall_s=wall_s,
            )
            mode = faults.reply_fault(spec.key)
            if mode is not None:
                reply = faults.corrupt_reply(reply, mode)
            protocol.write_message(channel, reply)
    except GracefulShutdown:
        # SIGTERM/SIGINT: release the current shard (no reply -- the
        # parent's pipe-EOF handling re-dispatches it as a retriable
        # failure) and exit cleanly instead of dying mid-write.
        return 0
    return 0


if __name__ == "__main__":
    try:
        sys.exit(worker_main())
    except ConfigurationError as exc:
        # Mirror the CLI's typed-error contract for direct entry
        # (``python -m repro.exec.worker``): one line, exit 2, no
        # traceback.
        print(f"error: {exc}", file=sys.stderr)
        sys.exit(2)
