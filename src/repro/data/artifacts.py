"""Shared stream artifacts: memoized, zero-copy scenario materialization.

Materializing a 20-minute 30-FPS stream draws 36,000 frames -- and the
experiment grids run up to six systems against the *same* (scenario, seed)
stream, historically regenerating it once per cell.  This module computes
each stream once per key and shares it everywhere:

- **In-process LRU** -- repeated materializations inside one process (a
  serial sweep, or a grid worker running every system of its shard) return
  the same :class:`~repro.data.stream.FrameWindow` object.
- **On-disk memmap tier** -- frames are persisted as plain ``.npy`` files
  under ``<cache root>/streams/<key>/`` and reopened with
  ``np.load(mmap_mode="r")``, so a warm materialization costs a file open,
  concurrent processes share pages through the OS cache, and
  ``FrameWindow.window`` slices stay zero-copy views of the mapping.

The key covers everything the frames depend on: scenario name, the full
segment schedule (domains + durations), the :class:`DomainModel` geometry
(feature_dim, geometry_seed), fps, the stream seed, the active
:class:`~repro.numeric.NumericPolicy` (float32 and float64 streams are
distinct artifacts), and :data:`STREAM_CACHE_VERSION`.  The disk tier inherits the cache root from
:func:`repro.cache.cache_dir` (``$REPRO_CACHE_DIR``; empty value disables
disk, keeping the LRU).  All disk failures are soft -- a missing, corrupt,
or unwritable entry falls back to in-memory generation, which is
bit-identical.

Layout of one entry::

    streams/<sha256 of the key>/
        features.npy   # (n, feature_dim) policy dtype (float64/float32)
        labels.npy     # (n,) int64
        times.npy      # (n,) float64 under every policy (index structure)
        meta.json      # human-readable key fields (debugging only)

Entries are content-deterministic, so concurrent writers race benignly:
every writer produces identical bytes and ``os.replace`` keeps each file
atomic.  Wipe the ``streams/`` directory freely; it is a pure cache.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.cache import cache_dir, write_atomic
from repro.data.stream import FrameWindow, ScenarioStream
from repro.errors import ScenarioError
from repro.numeric import NumericPolicy, active_policy

__all__ = [
    "ArtifactStore",
    "STREAM_CACHE_VERSION",
    "caching_disabled",
    "get_store",
    "materialize",
    "stream_key",
]

#: Layout/key version of stream cache entries (bump on generator changes).
#: v2: the numeric policy entered the key (float32/float64 entries are
#: distinct artifacts with distinct digests and on-disk dtypes).
STREAM_CACHE_VERSION = 2


def _entry_arrays(policy: NumericPolicy) -> tuple[tuple[str, np.dtype], ...]:
    """Array files of one entry with their expected dtypes under a policy.

    Features follow the policy; timestamps are always float64 (they are
    window-boundary index structure, see
    :meth:`repro.data.stream.ScenarioStream._frame_times`).
    """
    return (
        ("features", policy.dtype),
        ("labels", np.dtype(np.int64)),
        ("times", np.dtype(np.float64)),
    )


def stream_key(
    stream: ScenarioStream, seed: int, policy: NumericPolicy | None = None
) -> str:
    """Hex digest covering every input the materialized frames depend on.

    The active numeric policy's digest namespace is part of the key, so a
    float32 stream and its float64 counterpart can never collide in the
    LRU or on disk.
    """
    policy = policy or active_policy()
    parts = [
        f"v{STREAM_CACHE_VERSION}",
        policy.digest_namespace,
        stream.name,
        repr(float(stream.fps)),
        str(int(seed)),
        str(stream.model.feature_dim),
        str(stream.model.geometry_seed),
    ]
    for segment in stream.segments:
        domain = segment.domain
        parts.append("|".join((
            domain.labels.value,
            domain.time.value,
            domain.location.value,
            domain.weather.value,
            repr(float(segment.duration_s)),
        )))
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


class ArtifactStore:
    """Two-tier (LRU + disk memmap) cache of materialized streams.

    Attributes:
        max_entries: In-process LRU capacity.  With the disk tier active,
            entries are memmap-backed and cost no RAM beyond page cache;
            without it, each full-length stream holds ~7 MB.
        hits / misses: In-process lookup counters (introspection).
    """

    def __init__(self, max_entries: int = 16) -> None:
        if max_entries < 1:
            raise ScenarioError("max_entries must be positive")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._lru: OrderedDict[tuple, FrameWindow] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, stream: ScenarioStream, seed: int = 0) -> FrameWindow:
        """The materialized stream, shared across callers of the same key.

        The active numeric policy is part of the key (via
        :func:`stream_key`), so requests under different policies resolve
        to different windows even within one process.
        """
        policy = active_policy()
        digest = stream_key(stream, seed, policy)
        root = cache_dir()
        # The LRU key includes the disk root so repointing $REPRO_CACHE_DIR
        # (tests do, per-case) never serves windows from the old tier.
        key = (digest, None if root is None else str(root))
        with self._lock:
            window = self._lru.get(key)
            if window is not None:
                self._lru.move_to_end(key)
                self.hits += 1
                return window
            self.misses += 1
        window = self._load(root, digest, stream, policy)
        if window is None:
            window = stream.generate(seed)
            stored = self._store(root, digest, stream, seed, window, policy)
            if stored is not None:
                window = stored
            else:
                # No disk tier: the in-memory window is about to be shared
                # across cells, so freeze it like the read-only memmaps --
                # an accidental in-place write should raise, not silently
                # corrupt every later consumer of the key.
                for array in (window.features, window.labels, window.times):
                    array.setflags(write=False)
        with self._lock:
            self._lru[key] = window
            self._lru.move_to_end(key)
            while len(self._lru) > self.max_entries:
                self._lru.popitem(last=False)
        return window

    def clear(self) -> None:
        """Drop the in-process tier (disk entries stay)."""
        with self._lock:
            self._lru.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._lru)

    # -- disk tier ----------------------------------------------------------

    @staticmethod
    def _entry_dir(root: Path, digest: str) -> Path:
        return root / "streams" / digest

    def _load(
        self,
        root: Path | None,
        digest: str,
        stream: ScenarioStream,
        policy: NumericPolicy,
    ) -> FrameWindow | None:
        """Memmap-open a disk entry, or None on any miss/corruption."""
        if root is None:
            return None
        entry = self._entry_dir(root, digest)
        arrays = {}
        try:
            for name, dtype in _entry_arrays(policy):
                arrays[name] = np.load(
                    entry / f"{name}.npy", mmap_mode="r"
                )
                if arrays[name].dtype != dtype:
                    return None
            if (
                arrays["features"].shape
                != (stream.num_frames, stream.model.feature_dim)
                or arrays["labels"].ndim != 1
                or arrays["times"].ndim != 1
            ):
                return None
            return FrameWindow(
                arrays["features"], arrays["labels"], arrays["times"]
            )
        except (OSError, ValueError, TypeError, ScenarioError):
            return None

    def _store(
        self,
        root: Path | None,
        digest: str,
        stream: ScenarioStream,
        seed: int,
        window: FrameWindow,
        policy: NumericPolicy,
    ) -> FrameWindow | None:
        """Persist a generated stream; return its memmap-backed reopen.

        Failures (read-only cache, full disk) are soft: the caller keeps
        the in-memory window, which is bit-identical.
        """
        if root is None:
            return None
        entry = self._entry_dir(root, digest)
        arrays = {
            "features": window.features,
            "labels": window.labels,
            "times": window.times,
        }
        try:
            entry.mkdir(parents=True, exist_ok=True)
            for name, _ in _entry_arrays(policy):
                write_atomic(
                    entry / f"{name}.npy",
                    lambda handle, array=arrays[name]: np.save(
                        handle, np.ascontiguousarray(array)
                    ),
                )
            meta = {
                "scenario": stream.name,
                "seed": int(seed),
                "fps": float(stream.fps),
                "num_frames": int(stream.num_frames),
                "feature_dim": int(stream.model.feature_dim),
                "geometry_seed": int(stream.model.geometry_seed),
                "dtype": policy.name,
                "version": STREAM_CACHE_VERSION,
            }
            write_atomic(
                entry / "meta.json",
                lambda handle: handle.write(
                    json.dumps(meta, indent=1).encode()
                ),
            )
        except OSError:
            return None
        return self._load(root, digest, stream, policy)


#: The process-wide store every ``ScenarioStream.materialize`` routes through.
_STORE = ArtifactStore()

_disabled = 0


def get_store() -> ArtifactStore:
    """The process-wide stream store."""
    return _STORE


@contextmanager
def caching_disabled():
    """Force materializations back to per-call generation while active.

    Used by the benchmark baseline (the pre-substrate behavior) and by
    equivalence tests; nestable and thread-hostile only in the benign sense
    (a racing materialization is simply uncached).
    """
    global _disabled
    _disabled += 1
    try:
        yield
    finally:
        _disabled -= 1


def materialize(stream: ScenarioStream, seed: int = 0) -> FrameWindow:
    """Materialize through the shared store (or directly, when disabled)."""
    if _disabled:
        return stream.generate(seed)
    return _STORE.get(stream, seed)
