"""Workload scenarios S1--S6 and ES1--ES2 (paper Table II).

Each scenario fixes some attributes and lets others drift at segment
boundaries:

=====  ========  ==========================================
Name   Weather   Drifting attributes
=====  ========  ==========================================
S1     Clear     Label Distribution
S2     Overcast  Label Distribution
S3     Clear     Label Distribution, Time of Day
S4     Snowy     Label Distribution, Time of Day
S5     Clear     Label Distribution, Time of Day, Location
S6     Rainy     Label Distribution, Time of Day, Location
ES1    drifting  all four attributes
ES2    drifting  all four attributes
=====  ========  ==========================================

Segments are 60 seconds (the granularity of the paper's Figure 8) over a
20-minute stream.  At each boundary every drifting attribute flips with a
seeded coin, so drifts arrive at irregular intervals but are reproducible
per scenario name.
"""

from __future__ import annotations

import numpy as np

from repro.data.attributes import (
    Domain,
    LabelDistribution,
    Location,
    TimeOfDay,
    Weather,
)
from repro.data.distributions import DomainModel
from repro.data.stream import (
    DEFAULT_DURATION_S,
    Segment,
    ScenarioStream,
)
from repro.errors import ScenarioError

__all__ = ["SCENARIO_NAMES", "build_scenario", "scenario_table"]

#: All evaluated scenarios, regular then extreme.
SCENARIO_NAMES: tuple[str, ...] = (
    "S1", "S2", "S3", "S4", "S5", "S6", "ES1", "ES2",
)

#: Segment granularity (Figure 8 shows 60-second segments).
SEGMENT_S = 60.0

#: Chance each drifting attribute flips at a segment boundary.
_FLIP_PROBABILITY = 0.5

#: Spec per scenario: fixed weather (None = drifting) and the attribute
#: names allowed to drift.
_SPECS: dict[str, tuple[Weather | None, tuple[str, ...], int]] = {
    "S1": (Weather.CLEAR, ("labels",), 101),
    "S2": (Weather.OVERCAST, ("labels",), 102),
    "S3": (Weather.CLEAR, ("labels", "time"), 103),
    "S4": (Weather.SNOWY, ("labels", "time"), 104),
    "S5": (Weather.CLEAR, ("labels", "time", "location"), 105),
    "S6": (Weather.RAINY, ("labels", "time", "location"), 106),
    "ES1": (None, ("labels", "time", "location", "weather"), 201),
    "ES2": (None, ("labels", "time", "location", "weather"), 202),
}

_FLIPS = {
    "labels": {
        LabelDistribution.TRAFFIC_ONLY: LabelDistribution.ALL,
        LabelDistribution.ALL: LabelDistribution.TRAFFIC_ONLY,
    },
    "time": {
        TimeOfDay.DAYTIME: TimeOfDay.NIGHT,
        TimeOfDay.NIGHT: TimeOfDay.DAYTIME,
    },
    "location": {
        Location.CITY: Location.HIGHWAY,
        Location.HIGHWAY: Location.CITY,
    },
}

_WEATHER_CYCLE = (
    Weather.CLEAR, Weather.OVERCAST, Weather.SNOWY, Weather.RAINY,
)


def _next_domain(
    domain: Domain,
    drifting: tuple[str, ...],
    rng: np.random.Generator,
) -> Domain:
    """Flip each drifting attribute with the scenario coin."""
    changes: dict[str, object] = {}
    for attribute in drifting:
        if rng.random() >= _FLIP_PROBABILITY:
            continue
        if attribute == "weather":
            options = [w for w in _WEATHER_CYCLE if w != domain.weather]
            changes["weather"] = options[rng.integers(len(options))]
        else:
            current = getattr(domain, attribute)
            changes[attribute] = _FLIPS[attribute][current]
    return domain.with_(**changes) if changes else domain


def build_scenario(
    name: str,
    duration_s: float = DEFAULT_DURATION_S,
    segment_s: float = SEGMENT_S,
    model: DomainModel | None = None,
) -> ScenarioStream:
    """Construct one of the Table II scenarios.

    Args:
        name: ``"S1"`` .. ``"S6"``, ``"ES1"``, ``"ES2"``.
        duration_s: Total stream length (paper: 20 minutes).
        segment_s: Segment granularity (paper: 60 seconds).
        model: Domain geometry override (defaults to the shared geometry).

    Raises:
        ScenarioError: For unknown names or non-positive durations.
    """
    if name not in _SPECS:
        known = ", ".join(SCENARIO_NAMES)
        raise ScenarioError(f"unknown scenario {name!r}; known: {known}")
    if duration_s <= 0 or segment_s <= 0:
        raise ScenarioError("durations must be positive")

    weather, drifting, seed = _SPECS[name]
    rng = np.random.default_rng(seed)
    domain = Domain(weather=weather if weather is not None else Weather.CLEAR)

    segments: list[Segment] = []
    remaining = duration_s
    while remaining > 1e-9:
        length = min(segment_s, remaining)
        segments.append(Segment(domain=domain, duration_s=length))
        remaining -= length
        if remaining > 1e-9:
            domain = _next_domain(domain, drifting, rng)

    return ScenarioStream(
        name=name,
        segments=tuple(segments),
        model=model or DomainModel(),
    )


def scenario_table() -> list[dict[str, str]]:
    """Rows reproducing Table II (name, weather, drift types)."""
    rows: list[dict[str, str]] = []
    labels = {
        "labels": "Label Distribution",
        "time": "Time of Day",
        "location": "Location",
        "weather": "Weather",
    }
    for name in SCENARIO_NAMES:
        weather, drifting, _ = _SPECS[name]
        rows.append(
            {
                "name": name,
                "weather": weather.value.capitalize() if weather else "Drifting",
                "drift_types": ", ".join(labels[d] for d in drifting),
            }
        )
    return rows
