"""Class-conditional feature distributions per domain.

Each object crop is a feature vector drawn from a Gaussian around its
class's *domain-specific* mean:

``x ~ N(R_domain @ mu_class,  sigma(domain)^2 * I)``

where ``R_domain`` composes one orthogonal rotation per active attribute
(night, highway, and the non-clear weathers).  The rotations act *within the
span of the class means*, which has two properties that make the synthetic
drift behave like the real one:

- **Difficulty is preserved.**  Rotations keep all pairwise mean distances,
  so every domain has the same intrinsic (Bayes) accuracy -- drift does not
  secretly make the task easier or harder, it *relocates* the classes.
- **Old boundaries break.**  Rotating within the constellation's span moves
  each class mean toward regions other classes used to occupy, so a model
  specialized on the previous domain genuinely misclassifies until it is
  retrained (out-of-span rotations would be nearly invisible to it).

Hard conditions (night, snow, rain) additionally widen the observation
noise, lowering those domains' accuracy ceiling, as in the real dataset.

Class priors depend on the label distribution (Traffic-Only segments lack
the non-traffic classes) and on the location (pedestrians and riders
concentrate in the city; cars and trucks dominate the highway), which is
what the paper's Figure 8 label-distribution histograms show.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy.linalg import expm, qr

from repro.data.attributes import (
    ALL_CLASSES,
    Domain,
    LabelDistribution,
    Location,
    TimeOfDay,
    Weather,
)
from repro.errors import ScenarioError
from repro.numeric import active_policy

__all__ = ["DomainModel"]

#: Feature dimensionality of an object crop embedding.
FEATURE_DIM = 24

#: Distance scale of class means from the origin (unit directions scaled).
CLASS_SEPARATION = 5.5

#: Rotation angle scale (radians of the largest principal angle) applied per
#: active domain attribute.
ROTATION_ANGLE = 1.8

#: Overcast is a milder appearance change than night/snow/rain.
OVERCAST_ANGLE = 0.7

#: Base within-class noise.
BASE_SIGMA = 1.0

#: Noise widening for hard conditions (night, snow, rain).
HARD_CONDITION_SIGMA_FACTOR = 1.25

#: Base class priors under the All distribution (cars dominate, as in
#: BDD100K): aligned with ALL_CLASSES order.
_BASE_PRIORS = np.array(
    [0.40, 0.10, 0.06, 0.12, 0.14, 0.08, 0.03, 0.03, 0.02, 0.02]
)

#: Multiplicative prior tilts by location, aligned with ALL_CLASSES order.
_CITY_TILT = np.array([0.8, 0.7, 1.2, 1.3, 1.2, 1.8, 1.6, 1.6, 1.3, 0.5])
_HIGHWAY_TILT = np.array([1.3, 1.6, 0.9, 0.5, 0.9, 0.2, 0.2, 0.2, 0.6, 0.3])

#: Seed namespace for the fixed geometry (means and rotations).
_GEOMETRY_SEED = 20240614


def _in_span_rotation(
    span_basis: np.ndarray,
    angle: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """A rotation supported on ``span_basis``'s column space.

    Built as ``expm(angle * Q A Q^T)`` with ``A`` a random antisymmetric
    matrix normalized to unit spectral norm, so ``angle`` is the largest
    principal rotation angle in radians.
    """
    k = span_basis.shape[1]
    g = rng.normal(size=(k, k))
    antisym = g - g.T
    antisym /= np.linalg.norm(antisym, 2)
    return expm(angle * (span_basis @ antisym @ span_basis.T))


@lru_cache(maxsize=None)
def _geometry(
    feature_dim: int, geometry_seed: int
) -> tuple[np.ndarray, dict]:
    """The (means, rotations) geometry for one seed, computed once.

    Every :class:`DomainModel` with the same (feature_dim, geometry_seed)
    shares these arrays -- the ``expm``/``qr`` construction is the dominant
    cost of building a model, and experiment grids build one per cell.  The
    arrays are frozen read-only since they are shared.
    """
    rng = np.random.default_rng(geometry_seed)
    n = len(ALL_CLASSES)
    directions = rng.normal(size=(n, feature_dim))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    means = CLASS_SEPARATION * directions
    span, _ = qr(means.T, mode="economic")

    rotations: dict[object, np.ndarray] = {}
    for attribute, angle in (
        (TimeOfDay.NIGHT, ROTATION_ANGLE),
        (Location.HIGHWAY, ROTATION_ANGLE),
        (Weather.OVERCAST, OVERCAST_ANGLE),
        (Weather.SNOWY, ROTATION_ANGLE),
        (Weather.RAINY, ROTATION_ANGLE),
    ):
        rotation = _in_span_rotation(span, angle, rng)
        rotation.setflags(write=False)
        rotations[attribute] = rotation
    means.setflags(write=False)
    return means, rotations


@dataclass(frozen=True)
class DomainModel:
    """Frozen generative geometry for every (class, domain) combination.

    The geometry (class means, attribute rotations) is derived from
    ``geometry_seed`` alone, so two DomainModels with the same seed generate
    identically distributed data; sampling randomness comes from the
    caller's generator.

    Attributes:
        feature_dim: Embedding dimensionality.
        geometry_seed: Seed fixing means and rotations.
    """

    feature_dim: int = FEATURE_DIM
    geometry_seed: int = _GEOMETRY_SEED

    def __post_init__(self) -> None:
        if self.feature_dim < len(ALL_CLASSES):
            raise ScenarioError(
                f"feature_dim must be >= {len(ALL_CLASSES)} so class means "
                "span a full rotation subspace"
            )
        means, rotations = _geometry(self.feature_dim, self.geometry_seed)
        object.__setattr__(self, "_means", means)
        object.__setattr__(self, "_rotations", rotations)
        object.__setattr__(self, "_means_cache", {})
        object.__setattr__(self, "_priors_cache", {})

    @property
    def num_classes(self) -> int:
        """Total classes under the All distribution."""
        return len(ALL_CLASSES)

    def rotation(self, domain: Domain) -> np.ndarray:
        """The composed orthogonal transform for a domain."""
        result = np.eye(self.feature_dim)
        if domain.time is TimeOfDay.NIGHT:
            result = self._rotations[TimeOfDay.NIGHT] @ result
        if domain.location is Location.HIGHWAY:
            result = self._rotations[Location.HIGHWAY] @ result
        if domain.weather in self._rotations:
            result = self._rotations[domain.weather] @ result
        return result

    def class_means(self, domain: Domain) -> np.ndarray:
        """Per-class means in a domain, shape ``(num_classes, feature_dim)``.

        Returned in the active :class:`~repro.numeric.NumericPolicy` dtype.
        The geometry itself is always *built* in float64 (``expm``/``qr``
        have no float32 benefit and the construction is shared), then cast
        once per domain.  Results are cached per (time, location, weather,
        dtype) since the label distribution does not affect the geometry
        and one model may serve both policies within a process.
        """
        policy = active_policy()
        key = (domain.time, domain.location, domain.weather, policy.name)
        cache: dict = self._means_cache
        if key not in cache:
            means = self._means @ self.rotation(domain).T
            cache[key] = means.astype(policy.dtype, copy=False)
        return cache[key]

    def sigma(self, domain: Domain) -> float:
        """Within-class noise scale in a domain."""
        hard = (
            domain.time is TimeOfDay.NIGHT
            or domain.weather in (Weather.SNOWY, Weather.RAINY)
        )
        return BASE_SIGMA * (HARD_CONDITION_SIGMA_FACTOR if hard else 1.0)

    def class_priors(self, domain: Domain) -> np.ndarray:
        """Class sampling probabilities in a domain (sums to 1).

        Classes outside the segment's label distribution get probability 0.
        Results are cached per (location, labels) -- the only attributes the
        priors depend on -- and returned read-only.
        """
        key = (domain.location, domain.labels)
        cached = self._priors_cache.get(key)
        if cached is not None:
            return cached
        priors = _BASE_PRIORS.copy()
        tilt = (
            _CITY_TILT if domain.location is Location.CITY else _HIGHWAY_TILT
        )
        priors = priors * tilt
        if domain.labels is LabelDistribution.TRAFFIC_ONLY:
            priors[len(domain.labels.classes):] = 0.0
        total = priors.sum()
        if total <= 0:
            raise ScenarioError(f"empty class priors for {domain.describe()}")
        priors = priors / total
        priors.setflags(write=False)
        self._priors_cache[key] = priors
        return priors

    def sample(
        self,
        domain: Domain,
        n: int,
        rng: np.random.Generator,
        out_features: np.ndarray | None = None,
        out_labels: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` labeled frames from a domain.

        Args:
            out_features: Optional ``(n, feature_dim)`` buffer in the active
                policy dtype the features are generated *into* (the batched
                stream generator passes preallocated slices to skip the
                concatenation copy).
            out_labels: Optional ``(n,)`` int64 buffer for the labels.

        The randomness consumed -- one ``choice`` draw for the labels, one
        standard-normal block for the noise -- is identical with or without
        the output buffers *and under every numeric policy*: labels use
        float64 priors and the noise always comes from the float64 normal
        stream.  Under float32 the draws are rounded once into the output
        buffer, so a float32 stream is the same random realization as its
        float64 counterpart to within one rounding -- which is what makes
        per-cell accuracies directly comparable across policies (and the
        0.5pp acceptance bound meaningful).

        Returns:
            ``(X, y)`` with ``X`` of shape ``(n, feature_dim)`` in the
            policy dtype and integer labels ``y`` indexing
            :data:`ALL_CLASSES`.
        """
        if n < 0:
            raise ScenarioError("sample size must be non-negative")
        priors = self.class_priors(domain)
        labels = rng.choice(self.num_classes, size=n, p=priors)
        if out_labels is not None:
            out_labels[...] = labels
            labels = out_labels
        means = self.class_means(domain)
        sigma = self.sigma(domain)
        if out_features is None:
            out_features = np.empty(
                (n, self.feature_dim), dtype=active_policy().dtype
            )
        if out_features.dtype == np.float64:
            rng.standard_normal(out=out_features)
        else:
            # Same float64 draws, cast once: keeps the realization shared
            # across policies (the narrower buffer still halves what gets
            # stored, shipped, and computed on downstream).
            out_features[...] = rng.standard_normal(
                size=out_features.shape
            )
        if sigma != 1.0:
            out_features *= sigma
        out_features += means[labels]
        return out_features, labels
