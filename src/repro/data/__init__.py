"""Synthetic BDD100K-like drifting video streams (paper section VII-A).

The paper crops objects from BDD100K driving videos, orders them
chronologically, and characterizes segments by three attributes -- Label
Distribution (Traffic-Only vs All), Time of Day (Daytime vs Night), and
Location (City vs Highway) -- plus Weather for the extreme scenarios.  Data
drift is a segment boundary where attributes change.

This package generates the synthetic equivalent: each *domain* (attribute
combination) defines class priors and class-conditional Gaussian feature
distributions; scenarios S1--S6 and ES1--ES2 are segment schedules over
domains following Table II.  The drift *structure* (label-set changes plus
class-conditional covariate shifts) mirrors the real dataset's, which is
what the continuous-learning dynamics depend on.
"""

from repro.data.attributes import (
    ALL_CLASSES,
    TRAFFIC_CLASSES,
    Domain,
    LabelDistribution,
    Location,
    TimeOfDay,
    Weather,
)
from repro.data.distributions import DomainModel
from repro.data.stream import FrameWindow, Segment, ScenarioStream
from repro.data.artifacts import (
    ArtifactStore,
    caching_disabled,
    get_store,
    stream_key,
)
from repro.data.scenarios import (
    SCENARIO_NAMES,
    build_scenario,
    scenario_table,
)
from repro.data.sampler import stratified_indices, uniform_sample_indices

__all__ = [
    "ALL_CLASSES",
    "ArtifactStore",
    "Domain",
    "DomainModel",
    "FrameWindow",
    "LabelDistribution",
    "Location",
    "SCENARIO_NAMES",
    "ScenarioStream",
    "Segment",
    "TRAFFIC_CLASSES",
    "TimeOfDay",
    "Weather",
    "build_scenario",
    "caching_disabled",
    "get_store",
    "scenario_table",
    "stratified_indices",
    "stream_key",
    "uniform_sample_indices",
]
