"""Chronological frame streams assembled from domain segments.

A scenario is a sequence of :class:`Segment`\\ s (domain + duration).  The
paper unfolds each scenario over 20 minutes at 30 FPS (section VII-A);
materializing a stream draws every frame's feature vector and label from
the segment's domain model, in chronological order.

Materialization routes through the shared :class:`ArtifactStore`
(:mod:`repro.data.artifacts`): a (scenario, schedule, geometry, fps, seed)
key maps to one generated stream that is memoized in-process and persisted
as memmap-openable ``.npy`` files, so grid experiments share a single copy
instead of regenerating 36,000 frames per cell.  :meth:`ScenarioStream.generate`
is the raw (uncached) generator underneath.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.data.attributes import Domain
from repro.data.distributions import DomainModel
from repro.errors import ScenarioError
from repro.numeric import active_policy

__all__ = ["Segment", "FrameWindow", "ScenarioStream"]

#: Paper section VII-A stream parameters.
DEFAULT_FPS = 30.0
DEFAULT_DURATION_S = 20 * 60


@dataclass(frozen=True)
class Segment:
    """A maximal stretch of the stream with a constant domain.

    Attributes:
        domain: The attribute combination in effect.
        duration_s: Segment length in seconds.
    """

    domain: Domain
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ScenarioError("segment duration must be positive")


@dataclass(frozen=True)
class FrameWindow:
    """A contiguous slice of materialized frames.

    The public constructor validates that the arrays agree in length;
    internal slicing (:meth:`window`, :meth:`subset`) runs on the hot path
    of every simulated phase and skips that revalidation -- slices of a
    valid window are valid by construction.  Slices are numpy views (of a
    memmap when the stream came from the artifact store), never copies.

    Attributes:
        features: ``(n, feature_dim)`` crop embeddings.
        labels: ``(n,)`` integer ground-truth labels.
        times: ``(n,)`` frame timestamps in seconds, non-decreasing.
    """

    features: np.ndarray
    labels: np.ndarray
    times: np.ndarray

    def __post_init__(self) -> None:
        if not (
            len(self.features) == len(self.labels) == len(self.times)
        ):
            raise ScenarioError("frame arrays must have equal length")

    @classmethod
    def _trusted(
        cls, features: np.ndarray, labels: np.ndarray, times: np.ndarray
    ) -> "FrameWindow":
        """Construct without revalidation (callers guarantee equal lengths)."""
        window = object.__new__(cls)
        object.__setattr__(window, "features", features)
        object.__setattr__(window, "labels", labels)
        object.__setattr__(window, "times", times)
        return window

    def __len__(self) -> int:
        return len(self.labels)

    def window(self, t0: float, t1: float) -> "FrameWindow":
        """Frames with timestamps in ``[t0, t1)`` (a zero-copy view)."""
        if t1 < t0:
            raise ScenarioError(f"invalid window [{t0}, {t1})")
        lo = int(np.searchsorted(self.times, t0, side="left"))
        hi = int(np.searchsorted(self.times, t1, side="left"))
        return FrameWindow._trusted(
            self.features[lo:hi], self.labels[lo:hi], self.times[lo:hi]
        )

    def subset(self, indices: np.ndarray) -> "FrameWindow":
        """Frames at the given positions (sampler output)."""
        return FrameWindow._trusted(
            self.features[indices], self.labels[indices], self.times[indices]
        )


@dataclass(frozen=True)
class ScenarioStream:
    """A named schedule of segments over one domain model.

    Attributes:
        name: Scenario name (``"S1"`` .. ``"ES2"``).
        segments: Chronological segments.
        model: Generative geometry shared by all segments.
        fps: Frame rate.
    """

    name: str
    segments: tuple[Segment, ...]
    model: DomainModel = DomainModel()
    fps: float = DEFAULT_FPS

    def __post_init__(self) -> None:
        if not self.segments:
            raise ScenarioError(f"{self.name}: scenario has no segments")
        if self.fps <= 0:
            raise ScenarioError(f"{self.name}: fps must be positive")

    @cached_property
    def _segment_ends(self) -> np.ndarray:
        """Cumulative segment end times (the searchsorted boundaries)."""
        return np.cumsum([s.duration_s for s in self.segments])

    @cached_property
    def _frame_counts(self) -> tuple[int, ...]:
        """Frames contributed by each segment."""
        return tuple(
            int(round(s.duration_s * self.fps)) for s in self.segments
        )

    @cached_property
    def duration_s(self) -> float:
        """Total stream length in seconds."""
        return float(self._segment_ends[-1])

    @cached_property
    def num_frames(self) -> int:
        """Total frame count."""
        return sum(self._frame_counts)

    def segment_at(self, t: float) -> Segment:
        """The segment containing time ``t``."""
        if t < 0:
            raise ScenarioError(f"negative time {t}")
        index = int(np.searchsorted(self._segment_ends, t, side="right"))
        if index >= len(self.segments):
            return self.segments[-1]
        return self.segments[index]

    def drift_times(self) -> tuple[float, ...]:
        """Times of segment boundaries where the domain actually changes."""
        ends = self._segment_ends
        return tuple(
            float(ends[index])
            for index in range(len(self.segments) - 1)
            if self.segments[index + 1].domain != self.segments[index].domain
        )

    def materialize(self, seed: int = 0) -> FrameWindow:
        """The stream's frames, shared through the artifact store.

        Identical in content to :meth:`generate` at the same seed, but the
        result is memoized in-process and memmap-backed on disk (see
        :mod:`repro.data.artifacts`), so repeated materializations -- within
        a grid run or across processes -- cost a cache lookup instead of
        regenerating every frame.
        """
        from repro.data.artifacts import materialize

        return materialize(self, seed)

    def generate(self, seed: int = 0) -> FrameWindow:
        """Draw every frame of the stream, chronologically (uncached).

        Per-segment substreams are seeded from ``(seed, segment index)``, so
        a segment's content does not depend on how earlier segments consumed
        randomness.  Frames are generated directly into preallocated arrays
        and timestamps are computed in one vectorized pass.  Features and
        timestamps are carried in the active
        :class:`~repro.numeric.NumericPolicy` dtype (labels are always
        int64); under ``float32`` that halves the stream's memory and
        artifact-store footprint.
        """
        counts = self._frame_counts
        total = self.num_frames
        policy = active_policy()
        features = np.empty(
            (total, self.model.feature_dim), dtype=policy.dtype
        )
        labels = np.empty(total, dtype=np.int64)
        position = 0
        for index, segment in enumerate(self.segments):
            count = counts[index]
            rng = np.random.default_rng((seed, index))
            self.model.sample(
                segment.domain,
                count,
                rng,
                out_features=features[position:position + count],
                out_labels=labels[position:position + count],
            )
            position += count
        return FrameWindow(features, labels, self._frame_times())

    def _frame_times(self) -> np.ndarray:
        """All frame timestamps: per-segment ``start + arange(count)/fps``.

        Always float64, under every numeric policy.  Timestamps are index
        structure, not payload: phase windows are cut with ``searchsorted``
        against float64 phase boundaries, and a timestamp that rounded
        across a boundary in float32 would shift a frame between windows --
        changing ``len(window)`` and thereby every subsequent random draw
        of the run, which would make float32 accuracies incomparable to
        float64 ones.  At 24 features per frame the bandwidth cost of one
        float64 per frame is ~4%.
        """
        counts = np.asarray(self._frame_counts)
        ends = self._segment_ends
        starts = np.concatenate(([0.0], ends[:-1]))
        offsets = np.cumsum(counts) - counts
        local = np.arange(int(counts.sum())) - np.repeat(offsets, counts)
        return local / self.fps + np.repeat(starts, counts)
