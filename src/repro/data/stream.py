"""Chronological frame streams assembled from domain segments.

A scenario is a sequence of :class:`Segment`\\ s (domain + duration).  The
paper unfolds each scenario over 20 minutes at 30 FPS (section VII-A);
materializing a stream draws every frame's feature vector and label from
the segment's domain model, in chronological order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.attributes import Domain
from repro.data.distributions import DomainModel
from repro.errors import ScenarioError

__all__ = ["Segment", "FrameWindow", "ScenarioStream"]

#: Paper section VII-A stream parameters.
DEFAULT_FPS = 30.0
DEFAULT_DURATION_S = 20 * 60


@dataclass(frozen=True)
class Segment:
    """A maximal stretch of the stream with a constant domain.

    Attributes:
        domain: The attribute combination in effect.
        duration_s: Segment length in seconds.
    """

    domain: Domain
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ScenarioError("segment duration must be positive")


@dataclass(frozen=True)
class FrameWindow:
    """A contiguous slice of materialized frames.

    Attributes:
        features: ``(n, feature_dim)`` crop embeddings.
        labels: ``(n,)`` integer ground-truth labels.
        times: ``(n,)`` frame timestamps in seconds, non-decreasing.
    """

    features: np.ndarray
    labels: np.ndarray
    times: np.ndarray

    def __post_init__(self) -> None:
        if not (
            len(self.features) == len(self.labels) == len(self.times)
        ):
            raise ScenarioError("frame arrays must have equal length")

    def __len__(self) -> int:
        return len(self.labels)

    def window(self, t0: float, t1: float) -> "FrameWindow":
        """Frames with timestamps in ``[t0, t1)``."""
        if t1 < t0:
            raise ScenarioError(f"invalid window [{t0}, {t1})")
        lo = int(np.searchsorted(self.times, t0, side="left"))
        hi = int(np.searchsorted(self.times, t1, side="left"))
        return FrameWindow(
            self.features[lo:hi], self.labels[lo:hi], self.times[lo:hi]
        )

    def subset(self, indices: np.ndarray) -> "FrameWindow":
        """Frames at the given positions (sampler output)."""
        return FrameWindow(
            self.features[indices], self.labels[indices], self.times[indices]
        )


@dataclass(frozen=True)
class ScenarioStream:
    """A named schedule of segments over one domain model.

    Attributes:
        name: Scenario name (``"S1"`` .. ``"ES2"``).
        segments: Chronological segments.
        model: Generative geometry shared by all segments.
        fps: Frame rate.
    """

    name: str
    segments: tuple[Segment, ...]
    model: DomainModel = DomainModel()
    fps: float = DEFAULT_FPS

    def __post_init__(self) -> None:
        if not self.segments:
            raise ScenarioError(f"{self.name}: scenario has no segments")
        if self.fps <= 0:
            raise ScenarioError(f"{self.name}: fps must be positive")

    @property
    def duration_s(self) -> float:
        """Total stream length in seconds."""
        return sum(s.duration_s for s in self.segments)

    @property
    def num_frames(self) -> int:
        """Total frame count."""
        return sum(int(round(s.duration_s * self.fps)) for s in self.segments)

    def segment_at(self, t: float) -> Segment:
        """The segment containing time ``t``."""
        if t < 0:
            raise ScenarioError(f"negative time {t}")
        elapsed = 0.0
        for segment in self.segments:
            elapsed += segment.duration_s
            if t < elapsed:
                return segment
        return self.segments[-1]

    def drift_times(self) -> tuple[float, ...]:
        """Times of segment boundaries where the domain actually changes."""
        drifts: list[float] = []
        elapsed = 0.0
        for prev, nxt in zip(self.segments, self.segments[1:]):
            elapsed += prev.duration_s
            if nxt.domain != prev.domain:
                drifts.append(elapsed)
        return tuple(drifts)

    def materialize(self, seed: int = 0) -> FrameWindow:
        """Draw every frame of the stream, chronologically.

        Per-segment substreams are seeded from ``(seed, segment index)``, so
        a segment's content does not depend on how earlier segments consumed
        randomness.
        """
        features: list[np.ndarray] = []
        labels: list[np.ndarray] = []
        times: list[np.ndarray] = []
        start = 0.0
        for index, segment in enumerate(self.segments):
            count = int(round(segment.duration_s * self.fps))
            rng = np.random.default_rng((seed, index))
            x, y = self.model.sample(segment.domain, count, rng)
            t = start + np.arange(count) / self.fps
            features.append(x)
            labels.append(y)
            times.append(t)
            start += segment.duration_s
        return FrameWindow(
            np.concatenate(features),
            np.concatenate(labels),
            np.concatenate(times),
        )
