"""Frame samplers for the labeling pipeline (paper Figure 1).

Every frame reaches inference; only a sampled subset is labeled by the
teacher and considered for retraining.  The paper's workload study sweeps
sampling rates of 3/5/10% (Figure 3).

Samplers are numeric-policy-neutral by design: they return int64 *indices*
and consume only the integer/choice RNG stream, so the frames a run labels
are identical under float64 and float32 policies -- windowing a stream in
either dtype selects the same subsets (`FrameWindow.subset` then yields
views in whatever dtype the stream carries).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ScenarioError

__all__ = ["uniform_sample_indices", "stratified_indices"]


def uniform_sample_indices(
    num_frames: int, rate: float, rng: np.random.Generator
) -> np.ndarray:
    """Indices of a uniform ``rate`` subsample of ``num_frames`` frames.

    Args:
        num_frames: Population size.
        rate: Sampling fraction in ``(0, 1]``.
        rng: Randomness source.

    Returns:
        Sorted unique indices (chronological order preserved).
    """
    if num_frames < 0:
        raise ScenarioError("num_frames must be non-negative")
    if not 0 < rate <= 1:
        raise ScenarioError(f"sampling rate must be in (0, 1], got {rate}")
    count = int(round(num_frames * rate))
    count = min(count, num_frames)
    if count == 0:
        return np.empty(0, dtype=np.int64)
    picked = rng.choice(num_frames, size=count, replace=False)
    return np.sort(picked)


def stratified_indices(
    labels: np.ndarray, per_class: int, rng: np.random.Generator
) -> np.ndarray:
    """Up to ``per_class`` indices from each class present in ``labels``.

    Used to keep validation sets representative of the buffer contents.
    """
    if per_class < 1:
        raise ScenarioError("per_class must be >= 1")
    labels = np.asarray(labels)
    picked: list[np.ndarray] = []
    for cls in np.unique(labels):
        members = np.flatnonzero(labels == cls)
        take = min(per_class, len(members))
        picked.append(rng.choice(members, size=take, replace=False))
    if not picked:
        return np.empty(0, dtype=np.int64)
    return np.sort(np.concatenate(picked))
