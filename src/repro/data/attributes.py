"""Domain attributes of the driving streams (paper Table II).

A :class:`Domain` is one combination of the four attributes.  The first
three drive the regular scenarios S1--S6; Weather additionally varies in the
extreme scenarios ES1--ES2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "ALL_CLASSES",
    "TRAFFIC_CLASSES",
    "Domain",
    "LabelDistribution",
    "Location",
    "TimeOfDay",
    "Weather",
]

#: Object categories cropped from the driving dataset (BDD100K detection
#: classes).  The first five are "traffic" labels; the rest appear only
#: under the All label distribution.
TRAFFIC_CLASSES: tuple[str, ...] = (
    "car",
    "truck",
    "bus",
    "traffic_light",
    "traffic_sign",
)
ALL_CLASSES: tuple[str, ...] = TRAFFIC_CLASSES + (
    "pedestrian",
    "rider",
    "bicycle",
    "motorcycle",
    "train",
)


class LabelDistribution(enum.Enum):
    """Which label set the segment contains (Table II)."""

    TRAFFIC_ONLY = "traffic_only"
    ALL = "all"

    @property
    def classes(self) -> tuple[str, ...]:
        """Class names present under this distribution."""
        if self is LabelDistribution.TRAFFIC_ONLY:
            return TRAFFIC_CLASSES
        return ALL_CLASSES


class TimeOfDay(enum.Enum):
    """Lighting condition."""

    DAYTIME = "daytime"
    NIGHT = "night"


class Location(enum.Enum):
    """Driving environment."""

    CITY = "city"
    HIGHWAY = "highway"


class Weather(enum.Enum):
    """Weather condition (fixed per regular scenario, drifting in ES1/ES2)."""

    CLEAR = "clear"
    OVERCAST = "overcast"
    SNOWY = "snowy"
    RAINY = "rainy"


@dataclass(frozen=True)
class Domain:
    """One attribute combination; the unit data drifts move between.

    Attributes:
        labels: Label distribution in effect.
        time: Time of day.
        location: City or highway.
        weather: Weather condition.
    """

    labels: LabelDistribution = LabelDistribution.TRAFFIC_ONLY
    time: TimeOfDay = TimeOfDay.DAYTIME
    location: Location = Location.CITY
    weather: Weather = Weather.CLEAR

    def with_(self, **changes: object) -> "Domain":
        """A copy with some attributes replaced (drift construction)."""
        from dataclasses import replace

        return replace(self, **changes)

    def describe(self) -> str:
        """Compact attribute string for reports."""
        return (
            f"{self.labels.value}/{self.time.value}/"
            f"{self.location.value}/{self.weather.value}"
        )
