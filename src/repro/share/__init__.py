"""Cross-camera work sharing: fingerprints, clusters, and reuse runtime.

A fleet of correlated cameras (same scenario schedule, different sensor
seeds) currently pays N full label+retrain bills for N cameras.  This
package makes that cost sublinear, ECCO-style:

- :mod:`repro.share.policy` -- the explicit opt-in :class:`SharingPolicy`
  (mirrors :class:`repro.numeric.NumericPolicy`; default :data:`OFF` keeps
  the bit-identical reference path).
- :mod:`repro.share.fingerprint` -- cheap, deterministic drift signatures
  per stream (domain schedule tokens, with a feature-statistics fallback).
- :mod:`repro.share.cluster` -- threshold clustering of fingerprints into
  camera clusters, stable under camera-order permutation.
- :mod:`repro.share.runtime` -- the in-process cluster state: shared
  teacher labels, warm-started student weights, and DAM-style per-domain
  weight-delta merging, plus the encode/decode used to journal cluster
  state across service windows.
"""

from repro.share.policy import (
    CLUSTER,
    OFF,
    SHARING_ENV,
    SHARING_POLICIES,
    SharingPolicy,
    active_sharing,
    resolve_sharing,
    use_sharing,
)
from repro.share.fingerprint import (
    StreamFingerprint,
    cell_fingerprint,
    feature_fingerprint,
    fingerprint_distance,
    schedule_fingerprint,
)
from repro.share.cluster import (
    ClusterAssignment,
    ClusterTracker,
    cluster_cells,
    describe_clusters,
)
from repro.share.runtime import (
    ClusterRuntime,
    active_cluster_runtime,
    decode_cluster_state,
    encode_cluster_state,
)

__all__ = [
    "CLUSTER",
    "OFF",
    "SHARING_ENV",
    "SHARING_POLICIES",
    "ClusterAssignment",
    "ClusterRuntime",
    "ClusterTracker",
    "SharingPolicy",
    "StreamFingerprint",
    "active_cluster_runtime",
    "active_sharing",
    "cell_fingerprint",
    "cluster_cells",
    "decode_cluster_state",
    "describe_clusters",
    "encode_cluster_state",
    "feature_fingerprint",
    "fingerprint_distance",
    "resolve_sharing",
    "schedule_fingerprint",
    "use_sharing",
]
