"""The in-process cluster state: label sharing, warm starts, delta merging.

One :class:`ClusterRuntime` holds everything a cluster's members reuse:

- **Shared teacher labels** -- the first member to label a (domain token,
  time slot) publishes the sampled features and teacher labels; neighbors
  hitting the same (token, slot) adopt them instead of running the teacher.
- **Warm starts** -- the first member's pretrained student becomes the
  cluster *base*; later members start from the cluster's freshest weights
  (so a new camera inherits everything its neighbors already learned).
- **Per-domain weight deltas** -- after a retrain, a member publishes its
  weights as a delta against the base, keyed by the domain token it
  retrained in.  A neighbor entering the same domain substitutes
  ``base + delta`` for its own retrain (DAM's adapter reuse); when two
  members publish diverging deltas for one domain, they are blended
  ``(1 - alpha) * old + alpha * new`` (DAM's merge rule) instead of either
  winning outright.

The runtime is installed with :meth:`ClusterRuntime.activate` around one
cell's execution; the hooks in ``core/system.py`` and ``learn/student.py``
consult :func:`active_cluster_runtime` and do nothing when it is ``None``
-- the default off-path runs zero sharing code.

For the service layer, :func:`encode_cluster_state` /
:func:`decode_cluster_state` round-trip the *weight* state (base, freshest,
deltas, counters) through the session journal so a cluster's windows share
learning across daemon restarts.  The label cache is deliberately not
journaled (it is large and only worth sharing in-process); label reuse
still applies whenever a cluster's cells are co-located on one shard,
which the cluster-aware planner guarantees for sweeps.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SnapshotError
from repro.share.fingerprint import cell_fingerprint
from repro.share.policy import SharingPolicy, resolve_sharing

__all__ = [
    "ClusterRuntime",
    "active_cluster_runtime",
    "decode_cluster_state",
    "encode_cluster_state",
]

#: Version tag of the journaled cluster-state payload.
CLUSTER_STATE_VERSION = 1

_runtime: ContextVar["ClusterRuntime | None"] = ContextVar(
    "repro_cluster_runtime", default=None
)


def active_cluster_runtime() -> "ClusterRuntime | None":
    """The cluster runtime active for the current cell, if any."""
    return _runtime.get()


def _state_delta(state, base):
    """Per-layer ``state - base`` (same snapshot structure)."""
    return (
        [w - bw for w, bw in zip(state[0], base[0])],
        [b - bb for b, bb in zip(state[1], base[1])],
    )


def _state_add(base, delta):
    """Per-layer ``base + delta`` (same snapshot structure)."""
    return (
        [bw + dw for bw, dw in zip(base[0], delta[0])],
        [bb + db for bb, db in zip(base[1], delta[1])],
    )


def _state_blend(old, new, alpha: float):
    """Per-layer ``(1 - alpha) * old + alpha * new``."""
    return (
        [(1.0 - alpha) * ow + alpha * nw for ow, nw in zip(old[0], new[0])],
        [(1.0 - alpha) * ob + alpha * nb for ob, nb in zip(old[1], new[1])],
    )


def _state_shapes(state):
    return tuple(w.shape for w in state[0]) + tuple(b.shape for b in state[1])


def _encode_state(state) -> dict:
    # Lazy import: repro.core's package init reaches back into repro.share
    # via the exec layer, so a module-level import here is a cycle.
    from repro.core.snapshot import encode_array

    return {
        "weights": [encode_array(w) for w in state[0]],
        "biases": [encode_array(b) for b in state[1]],
    }


def _decode_state(payload: dict):
    from repro.core.snapshot import decode_array

    return (
        [decode_array(entry) for entry in payload["weights"]],
        [decode_array(entry) for entry in payload["biases"]],
    )


@dataclass
class _DeltaEntry:
    """One published per-domain weight delta."""

    member: str
    slot: int
    delta: tuple


def _fresh_counters() -> dict[str, int]:
    return {
        "labels_computed": 0,
        "labels_shared": 0,
        "retrains_run": 0,
        "retrains_reused": 0,
        "retrain_samples": 0,
        "retrain_samples_reused": 0,
        "warm_starts": 0,
        "merges": 0,
    }


@dataclass
class ClusterRuntime:
    """Mutable shared state of one camera cluster.

    Created per cluster per shard (sweep path) or decoded from the session
    journal per window (service path).  Not thread-safe: a cluster's cells
    run sequentially on one shard by construction.
    """

    policy: SharingPolicy
    cluster_id: str
    segment_s: float = 60.0
    base_model: str | None = None
    base: tuple | None = None
    freshest: tuple | None = None
    deltas: dict[str, _DeltaEntry] = field(default_factory=dict)
    labels: dict[tuple[str, int], tuple] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=_fresh_counters)

    _member: str | None = None
    _tokens: tuple[str, ...] = ()

    @contextmanager
    def activate(self, cell):
        """Install this runtime for the execution of one member cell."""
        fingerprint = cell_fingerprint(cell)
        duration = (
            "def" if cell.duration_s is None else f"{cell.duration_s:g}"
        )
        self._member = f"{cell.scenario}/s{cell.seed}/{duration}"
        self._tokens = fingerprint.tokens
        self.segment_s = fingerprint.segment_s
        token = _runtime.set(self)
        try:
            yield self
        finally:
            _runtime.reset(token)
            self._member = None
            self._tokens = ()

    def _slot(self, t0: float) -> int:
        return int(t0 // self.segment_s)

    def _token_at(self, t0: float) -> str | None:
        if not self._tokens:
            return None
        index = min(self._slot(t0), len(self._tokens) - 1)
        return self._tokens[index]

    # -- teacher-label sharing -------------------------------------------

    def shared_labels(self, t0: float):
        """A neighbor's (features, labels) for this (domain, slot), or None."""
        if not self.policy.share_labels:
            return None
        domain = self._token_at(t0)
        if domain is None:
            return None
        entry = self.labels.get((domain, self._slot(t0)))
        if entry is None or entry[0] == self._member:
            return None
        _, x, y = entry
        self.counters["labels_shared"] += len(x)
        return x, y

    def publish_labels(self, t0: float, x, y) -> None:
        """Record a freshly computed teacher labeling for neighbors."""
        self.counters["labels_computed"] += len(x)
        if not self.policy.share_labels:
            return
        domain = self._token_at(t0)
        if domain is None:
            return
        key = (domain, self._slot(t0))
        if key not in self.labels:
            self.labels[key] = (self._member, x, y)

    # -- student warm starts and per-domain delta reuse ------------------

    def adopt_student(self, model_name: str, mlp) -> None:
        """Warm-start a freshly built student from cluster state.

        The first member's pretrain becomes the cluster base (the common
        origin all deltas are expressed against); later members of the
        same architecture start from the freshest published weights.
        """
        if self.base is None:
            self.base = mlp.snapshot()
            self.base_model = model_name
            return
        if not self.policy.warm_start or model_name != self.base_model:
            return
        if self.freshest is None:
            return
        if _state_shapes(self.freshest) != _state_shapes(mlp.snapshot()):
            return
        mlp.restore(self.freshest)
        self.counters["warm_starts"] += 1

    def reusable_retrain(self, t0: float, samples: int):
        """A neighbor's weights for this domain, or None to retrain.

        Returns ``base + delta`` for the current domain token when a
        neighbor has published one -- the DAM adapter substitution.
        """
        if not self.policy.merge or self.base is None:
            return None
        domain = self._token_at(t0)
        if domain is None:
            return None
        entry = self.deltas.get(domain)
        if entry is None or entry.member == self._member:
            return None
        state = _state_add(self.base, entry.delta)
        self.counters["retrains_reused"] += 1
        self.counters["retrain_samples_reused"] += samples
        return state

    def publish_retrain(self, t0: float, state, samples: int) -> None:
        """Publish a member's post-retrain weights as a per-domain delta."""
        self.counters["retrains_run"] += 1
        self.counters["retrain_samples"] += samples
        if self.base is None:
            return
        if _state_shapes(state) != _state_shapes(self.base):
            return
        self.freshest = state
        domain = self._token_at(t0)
        if domain is None:
            return
        delta = _state_delta(state, self.base)
        existing = self.deltas.get(domain)
        if (
            existing is not None
            and existing.member != self._member
            and self.policy.merge
        ):
            delta = _state_blend(
                existing.delta, delta, self.policy.merge_alpha
            )
            self.counters["merges"] += 1
        self.deltas[domain] = _DeltaEntry(
            member=self._member or "?", slot=self._slot(t0), delta=delta
        )


def encode_cluster_state(runtime: ClusterRuntime) -> dict:
    """The journal-able weight state of a cluster (labels excluded)."""
    payload: dict = {
        "version": CLUSTER_STATE_VERSION,
        "policy": runtime.policy.name,
        "cluster": runtime.cluster_id,
        "segment_s": runtime.segment_s,
        "base_model": runtime.base_model,
        "counters": dict(runtime.counters),
    }
    if runtime.base is not None:
        payload["base"] = _encode_state(runtime.base)
    if runtime.freshest is not None:
        payload["freshest"] = _encode_state(runtime.freshest)
    payload["deltas"] = {
        domain: {
            "member": entry.member,
            "slot": entry.slot,
            "state": _encode_state(entry.delta),
        }
        for domain, entry in runtime.deltas.items()
    }
    return payload


def decode_cluster_state(payload: dict, policy: SharingPolicy) -> ClusterRuntime:
    """Rebuild a cluster runtime from a journaled state payload."""
    try:
        version = payload["version"]
        if version != CLUSTER_STATE_VERSION:
            raise SnapshotError(
                f"cluster state version {version} != {CLUSTER_STATE_VERSION}"
            )
        runtime = ClusterRuntime(
            policy=resolve_sharing(payload.get("policy", policy)),
            cluster_id=payload["cluster"],
            segment_s=float(payload.get("segment_s", 60.0)),
            base_model=payload.get("base_model"),
        )
        if "base" in payload:
            runtime.base = _decode_state(payload["base"])
        if "freshest" in payload:
            runtime.freshest = _decode_state(payload["freshest"])
        for domain, entry in payload.get("deltas", {}).items():
            runtime.deltas[domain] = _DeltaEntry(
                member=entry["member"],
                slot=int(entry["slot"]),
                delta=_decode_state(entry["state"]),
            )
        counters = _fresh_counters()
        counters.update(payload.get("counters", {}))
        runtime.counters = counters
        return runtime
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"malformed cluster state: {exc}") from exc
