"""The sharing policy: an explicit opt-in for cross-camera work reuse.

Sharing changes *what work runs* (which teacher labelings and student
retrains actually execute), so unlike the numeric policy it can never be a
silent default: the frozen reference digests were all taken with every cell
independent.  This module mirrors :mod:`repro.numeric` exactly --

- :data:`OFF` -- the default.  Every (scenario, seed) cell is executed
  independently; the path is bit-identical to the frozen reference digests
  (no sharing code runs at all, the hooks see no active runtime).
- :data:`CLUSTER` -- the opt-in (``REPRO_SHARING=cluster``, ``--sharing
  cluster``, or ``sharing = "cluster"`` in a sweep spec's ``[sweep]``
  table).  Streams are fingerprinted and clustered; within a cluster,
  teacher labels are computed once and shared, retrains warm-start from the
  cluster's freshest student weights or substitute a neighbor's per-domain
  weight delta, and diverged deltas are merged DAM-style.  This path
  freezes its *own* digests (``tests/reference/digests_sharing.json``).

Resolution order: :func:`use_sharing` override > ``$REPRO_SHARING`` >
:data:`OFF` -- the same contextvar discipline as ``use_policy``, so it is
thread/async-safe and nests.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "CLUSTER",
    "OFF",
    "SHARING_ENV",
    "SHARING_POLICIES",
    "SharingPolicy",
    "active_sharing",
    "resolve_sharing",
    "use_sharing",
]

#: Environment variable selecting the process-wide sharing policy.
SHARING_ENV = "REPRO_SHARING"


@dataclass(frozen=True)
class SharingPolicy:
    """Every knob of the cross-camera reuse machinery, as one frozen value.

    Attributes:
        name: Canonical name (``"off"`` / ``"cluster"``) -- the value
            ``REPRO_SHARING`` takes and shard specs carry over the wire.
        enabled: Master switch.  When False no sharing code runs and the
            execution path is byte-for-byte the independent one.
        threshold: Maximum fingerprint distance (fraction of mismatching
            domain-schedule segments, in [0, 1]) for two streams to join
            the same cluster.  0 means only identical schedules cluster.
        share_labels: Reuse a cluster neighbor's teacher labels for the
            same (domain, time-slot) instead of running the teacher again.
        warm_start: New cluster members start from the cluster's freshest
            student weights instead of their own pretrain.
        merge: Substitute a neighbor's per-domain weight delta for a
            retrain when one is available, and blend deltas DAM-style when
            two members publish diverging deltas for the same domain.
        merge_alpha: Blend weight of the *newer* delta in a merge.
        digest_namespace: Token namespacing sharing-path artifacts so they
            can never collide with independent-path caches or digests.
    """

    name: str
    enabled: bool
    threshold: float
    share_labels: bool
    warm_start: bool
    merge: bool
    merge_alpha: float
    digest_namespace: str

    def __str__(self) -> str:
        return self.name


OFF = SharingPolicy(
    name="off",
    enabled=False,
    threshold=0.0,
    share_labels=False,
    warm_start=False,
    merge=False,
    merge_alpha=0.5,
    digest_namespace="ind",
)

CLUSTER = SharingPolicy(
    name="cluster",
    enabled=True,
    threshold=0.35,
    share_labels=True,
    warm_start=True,
    merge=True,
    merge_alpha=0.5,
    digest_namespace="shr",
)

#: Supported policies by canonical name.
SHARING_POLICIES: dict[str, SharingPolicy] = {
    OFF.name: OFF,
    CLUSTER.name: CLUSTER,
}

#: Accepted spellings (environment values, CLI args, spec keys).
_ALIASES: dict[str, SharingPolicy] = {
    "": OFF,
    "off": OFF,
    "0": OFF,
    "no": OFF,
    "none": OFF,
    "false": OFF,
    "independent": OFF,
    "cluster": CLUSTER,
    "on": CLUSTER,
    "1": CLUSTER,
    "yes": CLUSTER,
    "true": CLUSTER,
    "shared": CLUSTER,
}

_override: ContextVar[SharingPolicy | None] = ContextVar(
    "repro_sharing_policy", default=None
)


def resolve_sharing(spec: "str | SharingPolicy | None") -> SharingPolicy:
    """A policy from a name/alias, an existing policy, or None (default)."""
    if spec is None:
        return OFF
    if isinstance(spec, SharingPolicy):
        return spec
    try:
        return _ALIASES[spec.strip().lower()]
    except KeyError:
        known = ", ".join(sorted(SHARING_POLICIES))
        raise ConfigurationError(
            f"unknown sharing policy {spec!r} "
            f"(set {SHARING_ENV} to one of: {known})"
        )


def active_sharing() -> SharingPolicy:
    """The policy in effect: override > ``$REPRO_SHARING`` > off."""
    override = _override.get()
    if override is not None:
        return override
    return resolve_sharing(os.environ.get(SHARING_ENV))


@contextmanager
def use_sharing(spec: "str | SharingPolicy"):
    """Force a sharing policy for the dynamic extent of the ``with`` block."""
    policy = resolve_sharing(spec)
    token = _override.set(policy)
    try:
        yield policy
    finally:
        _override.reset(token)
