"""Threshold clustering of stream fingerprints into camera clusters.

Cells are first partitioned by *work profile* -- the (cell kind, system or
platform, model pair) tuple -- because labels and weights can only be
shared between cells running the same models.  Within a partition, the
distinct stream keys (scenario, duration) are fingerprinted and greedily
clustered: keys are visited in sorted order (so the result is independent
of camera order in the spec) and each joins the first existing cluster
whose representative fingerprint is within the policy threshold, else
founds a new one.  Cluster ids ``c0, c1, ...`` are assigned over the
sorted representatives, making the whole assignment a pure function of the
cell *set* and the policy -- stable across processes, jobs counts, numeric
policies, and permutations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.share.fingerprint import (
    StreamFingerprint,
    fingerprint_distance,
    schedule_fingerprint,
)
from repro.share.policy import SharingPolicy

__all__ = [
    "ClusterAssignment",
    "ClusterTracker",
    "cluster_cells",
    "describe_clusters",
]


def _partition_key(cell) -> tuple[str, ...]:
    """The work profile sharing is allowed to cross seeds within."""
    kind = type(cell).__name__
    engine = getattr(cell, "system", None)
    if engine is None:
        engine = f"{getattr(cell, 'kind', '?')}@{getattr(cell, 'platform', '?')}"
    return (kind, str(engine), str(cell.pair))


def _stream_key(cell) -> tuple[str, str]:
    """The distinct-stream key fingerprints are computed per."""
    duration = "def" if cell.duration_s is None else f"{cell.duration_s:g}"
    return (cell.scenario, duration)


@dataclass(frozen=True)
class ClusterAssignment:
    """The result of clustering a cell list.

    Attributes:
        policy: The sharing policy the clustering ran under.
        clusters: Cluster id -> tuple of member keys, where a member key is
            ``partition_key + stream_key``.  Insertion order of the dict is
            the sorted-representative order the ids were assigned in.
        members: Member key -> cluster id (the inverse mapping).
        fingerprints: Member key -> fingerprint (for describe/debug).
    """

    policy: SharingPolicy
    clusters: dict[str, tuple[tuple, ...]]
    members: dict[tuple, str]
    fingerprints: dict[tuple, StreamFingerprint]

    def cluster_of(self, cell) -> str:
        """The cluster id a cell belongs to."""
        return self.members[_partition_key(cell) + _stream_key(cell)]

    def cluster_cells_of(self, cells) -> dict[str, list]:
        """Cells grouped by cluster id, preserving cell order within."""
        grouped: dict[str, list] = {}
        for cell in cells:
            grouped.setdefault(self.cluster_of(cell), []).append(cell)
        return grouped


def cluster_cells(cells, policy: SharingPolicy) -> ClusterAssignment:
    """Cluster a cell list's distinct streams under a sharing policy."""
    keys: dict[tuple, tuple[str, str]] = {}
    for cell in cells:
        member = _partition_key(cell) + _stream_key(cell)
        if member not in keys:
            keys[member] = (cell.scenario, cell.duration_s)
    fingerprints = {
        member: schedule_fingerprint(scenario, duration)
        for member, (scenario, duration) in sorted(keys.items())
    }
    # Greedy threshold pass over sorted keys: join the first cluster whose
    # representative (founder) is close enough, else found a new one.
    reps: list[tuple[tuple, StreamFingerprint]] = []
    groups: dict[tuple, list[tuple]] = {}
    for member in sorted(fingerprints):
        fp = fingerprints[member]
        home = None
        for rep_member, rep_fp in reps:
            if rep_member[:3] != member[:3]:  # different work profile
                continue
            if fingerprint_distance(fp, rep_fp) <= policy.threshold:
                home = rep_member
                break
        if home is None:
            reps.append((member, fp))
            home = member
            groups[home] = []
        groups[home].append(member)
    clusters: dict[str, tuple[tuple, ...]] = {}
    members: dict[tuple, str] = {}
    for index, (rep_member, _) in enumerate(reps):
        cid = f"c{index}"
        clusters[cid] = tuple(groups[rep_member])
        for member in groups[rep_member]:
            members[member] = cid
    return ClusterAssignment(
        policy=policy,
        clusters=clusters,
        members=members,
        fingerprints=fingerprints,
    )


class ClusterTracker:
    """Incremental clustering for runtime-admitted streams.

    A resident service admits streams one by one, so the batch
    :func:`cluster_cells` pass (which needs the whole cell set up front)
    does not fit.  The tracker applies the same greedy threshold rule
    *in admission order*: each new stream joins the first existing
    cluster whose founder shares its work profile and is within the
    policy threshold, else founds cluster ``c<n>``.  Ids are therefore a
    pure function of the admission sequence -- and a resumed session
    replays admits in journal order, reproducing the same ids.
    """

    def __init__(self, policy: SharingPolicy) -> None:
        self.policy = policy
        self._reps: list[tuple[tuple, StreamFingerprint, str]] = []
        self._members: dict[tuple, str] = {}

    def assign(self, cell) -> str:
        """The cluster id for a cell, founding a new cluster if needed."""
        member = _partition_key(cell) + _stream_key(cell)
        known = self._members.get(member)
        if known is not None:
            return known
        fp = schedule_fingerprint(cell.scenario, cell.duration_s)
        for rep_member, rep_fp, cid in self._reps:
            if rep_member[:3] != member[:3]:  # different work profile
                continue
            if fingerprint_distance(fp, rep_fp) <= self.policy.threshold:
                self._members[member] = cid
                return cid
        cid = f"c{len(self._reps)}"
        self._reps.append((member, fp, cid))
        self._members[member] = cid
        return cid


def describe_clusters(assignment: ClusterAssignment, cells) -> list[str]:
    """Human-readable cluster assignment lines (``--plan`` output)."""
    grouped = assignment.cluster_cells_of(cells)
    lines = []
    for cid in assignment.clusters:
        members = grouped.get(cid, [])
        if not members:
            continue
        streams = []
        for cell in members:
            duration = (
                "def" if cell.duration_s is None else f"{cell.duration_s:g}s"
            )
            streams.append(f"{cell.scenario}/s{cell.seed}/{duration}")
        fp = assignment.fingerprints[
            _partition_key(members[0]) + _stream_key(members[0])
        ]
        lines.append(
            f"{cid} [{len(members)} cells, fp {fp.digest()[:8]}]: "
            + " ".join(streams)
        )
    return lines
