"""Frozen digests for the cross-camera sharing contract, both paths.

The sharing feature carries a two-sided bit-identity contract:

- **Off-path**: with sharing disabled (the default), every cell of the
  reference fleet (``examples/fleet_shared.toml`` -- four cameras on one
  S4 intersection) produces byte-identical results to the independent
  executor; the ``"independent"`` section freezes those digests.
- **Shared path**: with ``--sharing cluster``, the cluster's execution is
  deterministic on any backend at any worker count (a cluster's cells
  are co-located on one shard and run sequentially through one runtime);
  the ``"shared"`` section freezes *those* digests, so reuse-path
  regressions are as loud as off-path ones.

``tests/reference/digests_sharing.json`` is the float64 freeze.
Regenerate only after an intentional numerics or sharing-rule change::

    PYTHONPATH=src python -m repro.share.reference \
        --out tests/reference/digests_sharing.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.numeric import active_policy

__all__ = [
    "sharing_reference_cells",
    "sharing_reference_digests",
    "sharing_reference_path",
]

#: The reference fleet's sharing policy name.
SHARING_REFERENCE_POLICY = "cluster"


def sharing_reference_cells():
    """The reference fleet: ``examples/fleet_shared.toml``'s four cameras."""
    from repro.exec.shard import SystemCell

    return [
        SystemCell(
            "DaCapo-Spatiotemporal", "resnet18_wrn50", "S4", seed, 240.0
        )
        for seed in range(4)
    ]


def run_shared_cells(cells, sharing=None):
    """Execute ``cells`` through the sharing path on one in-process shard.

    Returns ``(results, runtimes)`` where ``runtimes`` maps cluster id to
    its :class:`~repro.share.runtime.ClusterRuntime` (counters and all) --
    what the benchmark reads realized reuse from.  Deterministic: the
    executor routes a cluster's cells through exactly this sequential
    order on every backend.
    """
    from repro.exec.shard import run_cell
    from repro.share.cluster import cluster_cells
    from repro.share.policy import resolve_sharing, use_sharing
    from repro.share.runtime import ClusterRuntime

    sharing = resolve_sharing(
        SHARING_REFERENCE_POLICY if sharing is None else sharing
    )
    assignment = cluster_cells(cells, sharing)
    runtimes: dict[str, ClusterRuntime] = {}
    results = []
    with use_sharing(sharing):
        for cell in cells:
            cid = assignment.cluster_of(cell)
            runtime = runtimes.get(cid)
            if runtime is None:
                runtime = runtimes[cid] = ClusterRuntime(sharing, cid)
            with runtime.activate(cell):
                results.append(run_cell(cell))
    return results, runtimes


def sharing_reference_digests(cells=None) -> dict[str, dict[str, str]]:
    """``{"independent": {...}, "shared": {...}}`` digests, computed.

    Keys are cell keys under the ambient numeric policy; the independent
    section runs the default off-path, the shared section one co-located
    cluster shard under the ``cluster`` policy.
    """
    from repro.exec.shard import cell_key, run_cell
    from repro.reference import run_digest

    policy = active_policy().name
    if cells is None:
        cells = sharing_reference_cells()
    independent = {
        cell_key(policy, cell): run_digest(run_cell(cell)) for cell in cells
    }
    shared_results, _ = run_shared_cells(cells)
    shared = {
        cell_key(policy, cell): run_digest(result)
        for cell, result in zip(cells, shared_results)
    }
    return {"independent": independent, "shared": shared}


def sharing_reference_path(root: Path | None = None) -> Path:
    """The checked-in sharing digest file (float64 only)."""
    if root is None:
        root = Path(__file__).resolve().parents[3] / "tests" / "reference"
    return root / "digests_sharing.json"


def main(argv: list[str] | None = None) -> int:
    """Regenerate the frozen sharing digest file."""
    parser = argparse.ArgumentParser(
        prog="repro.share.reference",
        description="regenerate frozen cross-camera sharing digests",
    )
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)
    out = args.out or sharing_reference_path()
    payload = {
        "policy": active_policy().name,
        "sharing": SHARING_REFERENCE_POLICY,
        "digests": sharing_reference_digests(),
    }
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(
        f"wrote {out} "
        f"({len(payload['digests']['independent'])} cells per section)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
