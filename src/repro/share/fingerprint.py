"""Deterministic drift fingerprints for camera streams.

A fingerprint is the per-segment sequence of *domain tokens* a stream
visits -- the drift signature that decides whether two cameras see
correlated content.  Two sources:

- :func:`schedule_fingerprint` -- for streams with a known scenario, the
  domain schedule itself.  ``build_scenario`` seeds its flips from the
  scenario's *own* registry seed (``data/scenarios._SPECS``), never from
  the cell seed or the numeric policy, so the fingerprint is a pure
  function of (scenario name, duration): identical across processes, jobs
  counts, numeric policies, and camera seeds.  It is also cheap -- the
  schedule is built without materializing a single frame.
- :func:`feature_fingerprint` -- for streams without a known schedule, a
  per-segment feature-statistics signature: segment feature means are
  accumulated in float64 and quantized onto a coarse grid before hashing,
  so float32 and float64 materializations of the same stream agree.

Distance between fingerprints is the fraction of aligned segments whose
tokens differ (length mismatches count as differing), in [0, 1].
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.data.scenarios import SEGMENT_S, build_scenario

__all__ = [
    "StreamFingerprint",
    "cell_fingerprint",
    "feature_fingerprint",
    "fingerprint_distance",
    "schedule_fingerprint",
]

#: Quantization grid for feature-statistics tokens.  Coarse enough that the
#: ~1e-7 float32/float64 divergence of a segment mean can essentially never
#: move a value across a bin edge; fine enough to separate the synthetic
#: domain geometries (which shift class centers by O(1)).
_FEATURE_GRID = 0.25


@dataclass(frozen=True)
class StreamFingerprint:
    """A stream's drift signature: one domain token per segment.

    Attributes:
        source: ``"schedule"`` (domain schedule known) or ``"features"``
            (statistics fallback).  Fingerprints from different sources
            never match -- their tokens live in different alphabets.
        tokens: One token per segment, in stream order.
        segment_s: Segment granularity the tokens were taken at.
    """

    source: str
    tokens: tuple[str, ...]
    segment_s: float

    def digest(self) -> str:
        """A short stable hash of the fingerprint (for logs and tests)."""
        payload = "|".join((self.source, f"{self.segment_s:g}") + self.tokens)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


def schedule_fingerprint(
    scenario: str, duration_s: float | None = None
) -> StreamFingerprint:
    """The domain-schedule fingerprint of a named scenario.

    Deterministic in (scenario, duration) only: the schedule RNG is seeded
    from the scenario registry, so every camera seed of the same scenario
    shares one fingerprint.
    """
    if duration_s is None:
        stream = build_scenario(scenario)
    else:
        stream = build_scenario(scenario, duration_s=duration_s)
    tokens = tuple(segment.domain.describe() for segment in stream.segments)
    return StreamFingerprint(
        source="schedule", tokens=tokens, segment_s=float(SEGMENT_S)
    )


def feature_fingerprint(
    features: np.ndarray,
    times: np.ndarray,
    *,
    segment_s: float = SEGMENT_S,
) -> StreamFingerprint:
    """A feature-statistics fingerprint for a stream with no known schedule.

    Per segment, the feature mean vector is accumulated in float64 and
    snapped to a coarse grid before hashing, so the token survives numeric
    policy changes; empty segments hash to a fixed sentinel.
    """
    features = np.asarray(features, dtype=np.float64)
    times = np.asarray(times, dtype=np.float64)
    if len(times) == 0:
        return StreamFingerprint(
            source="features", tokens=(), segment_s=float(segment_s)
        )
    count = int(np.ceil((float(times.max()) + 1e-9) / segment_s))
    tokens = []
    for index in range(max(count, 1)):
        lo, hi = index * segment_s, (index + 1) * segment_s
        mask = (times >= lo) & (times < hi)
        if not mask.any():
            tokens.append("empty")
            continue
        mean = features[mask].mean(axis=0)
        grid = np.round(mean / _FEATURE_GRID).astype(np.int64)
        tokens.append(hashlib.sha256(grid.tobytes()).hexdigest()[:12])
    return StreamFingerprint(
        source="features", tokens=tuple(tokens), segment_s=float(segment_s)
    )


def cell_fingerprint(cell) -> StreamFingerprint:
    """The fingerprint of a grid cell's stream (schedule-derived)."""
    return schedule_fingerprint(cell.scenario, cell.duration_s)


def fingerprint_distance(a: StreamFingerprint, b: StreamFingerprint) -> float:
    """Fraction of mismatching segments between two fingerprints, in [0, 1].

    Fingerprints from different sources or segment granularities are
    maximally distant; a length mismatch counts every unpaired segment as
    differing.
    """
    if a.source != b.source or a.segment_s != b.segment_s:
        return 1.0
    length = max(len(a.tokens), len(b.tokens))
    if length == 0:
        return 0.0
    same = sum(
        1 for ta, tb in zip(a.tokens, b.tokens) if ta == tb
    )
    return 1.0 - same / length
