"""Scoped wall-time profiling of the simulation's phase-level hot paths.

The experiment pipeline spends its time in five places -- stream
materialization, proxy pretraining, teacher labeling, student retraining,
and per-frame inference scoring.  This module attributes wall time to those
phases with *exclusive* accounting (a scope opened inside another scope is
subtracted from its parent), so the per-phase totals never overlap and
always sum to at most the enclosing wall time.

Profiling is off by default and is a strict no-op on the hot path while
disabled: :func:`scope` returns one shared null context manager, so no
object is allocated and nothing is timed.  Enable it around a workload::

    profiler = profiling.enable()
    run_on_scenario(system, "S5")
    print(profiler.report())
    profiling.disable()

The active profiler is per-process, but the parallel grid runner
(:mod:`repro.core.parallel`) aggregates: when profiling is active in the
parent, each worker shard runs under its own profiler and ships its
snapshot back with the results, and the parent folds every worker snapshot
into the active profiler (:meth:`Profiler.merge`).  ``--profile`` therefore
composes with ``--jobs > 1``; the merged totals are CPU seconds across
processes, so they can legitimately exceed the parent's wall clock.
"""

from __future__ import annotations

import threading
import time

__all__ = [
    "INFERENCE",
    "LABEL",
    "MATERIALIZE",
    "PRETRAIN",
    "RETRAIN",
    "Profiler",
    "absorb",
    "active",
    "disable",
    "enable",
    "scope",
]

#: Canonical phase names wired into the runner (BENCH JSON keys).
MATERIALIZE = "materialize"
PRETRAIN = "pretrain"
LABEL = "label"
RETRAIN = "retrain"
INFERENCE = "inference"


class _NullScope:
    """The do-nothing context manager handed out while profiling is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class _Scope:
    """One timed region; exclusive time flows to the profiler on exit."""

    __slots__ = ("profiler", "name", "start", "child_s")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self.profiler = profiler
        self.name = name
        self.child_s = 0.0

    def __enter__(self) -> "_Scope":
        self.profiler._stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = time.perf_counter() - self.start
        stack = self.profiler._stack
        stack.pop()
        self.profiler._add(self.name, elapsed - self.child_s)
        if stack:
            # The parent reports only its own time: this scope's full span
            # (including grandchildren, already folded into ``elapsed``)
            # counts as child time there.
            stack[-1].child_s += elapsed
        return False


class Profiler:
    """Accumulates exclusive wall seconds and entry counts per phase.

    Scope nesting is tracked per thread (the batched executor runs one
    lane thread per cell, each opening its own phase scopes) while the
    totals are shared under a lock, so lane profiles aggregate exactly
    like worker-process profiles do.
    """

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        self._stacks = threading.local()
        self._lock = threading.Lock()

    @property
    def _stack(self) -> list[_Scope]:
        """This thread's open-scope stack (created on first use)."""
        stack = getattr(self._stacks, "value", None)
        if stack is None:
            stack = self._stacks.value = []
        return stack

    def _add(self, name: str, seconds: float) -> None:
        with self._lock:
            self.totals[name] = self.totals.get(name, 0.0) + seconds
            self.counts[name] = self.counts.get(name, 0) + 1

    def absorb(self, seconds: float) -> None:
        """Discount ``seconds`` from this thread's innermost open scope.

        The batched executor's accounting hook: a lane blocked at the
        lockstep barrier is not doing its phase's work, so the lane shim
        absorbs (submit wall - this cell's fair share of the batched
        round) and the phase's exclusive total keeps measuring compute,
        not synchronization.  No-op when no scope is open.
        """
        stack = self._stack
        if stack:
            stack[-1].child_s += seconds

    def scope(self, name: str) -> _Scope:
        """A context manager timing ``name`` against this profiler."""
        return _Scope(self, name)

    def total_s(self) -> float:
        """Summed exclusive time across all phases."""
        return sum(self.totals.values())

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Per-phase ``{"total_s": ..., "count": ...}``, insertion-ordered."""
        return {
            name: {"total_s": self.totals[name], "count": self.counts[name]}
            for name in self.totals
        }

    def merge(self, snapshot: dict[str, dict[str, float]]) -> None:
        """Fold another profiler's :meth:`snapshot` into this one.

        The parallel grid runner uses this to aggregate worker-process
        profiles into the parent's, so ``--profile`` composes with
        ``--jobs > 1``.  Phase totals are exclusive in each process, so
        summing them keeps them exclusive (note the merged total then
        counts CPU seconds across processes, which can exceed the
        parent's wall time).
        """
        for name, entry in snapshot.items():
            self.totals[name] = (
                self.totals.get(name, 0.0) + float(entry["total_s"])
            )
            self.counts[name] = (
                self.counts.get(name, 0) + int(entry["count"])
            )

    def report(self) -> str:
        """A human-readable breakdown, largest phase first."""
        total = self.total_s()
        lines = [f"phase breakdown ({total:.3f} s profiled)"]
        for name, seconds in sorted(
            self.totals.items(), key=lambda item: -item[1]
        ):
            share = seconds / total if total > 0 else 0.0
            lines.append(
                f"  {name:<12s} {seconds:8.3f} s  {share:6.1%}"
                f"  x{self.counts[name]}"
            )
        return "\n".join(lines)


_active: Profiler | None = None


def enable() -> Profiler:
    """Install (and return) a fresh process-wide profiler."""
    global _active
    _active = Profiler()
    return _active


def disable() -> None:
    """Stop profiling; subsequent :func:`scope` calls become no-ops."""
    global _active
    _active = None


def active() -> Profiler | None:
    """The installed profiler, or None while profiling is off."""
    return _active


def scope(name: str):
    """Time a region against the active profiler (shared no-op when off)."""
    profiler = _active
    if profiler is None:
        return _NULL_SCOPE
    return _Scope(profiler, name)


def absorb(seconds: float) -> None:
    """Discount barrier-wait seconds from the current scope, if profiling."""
    profiler = _active
    if profiler is not None:
        profiler.absorb(seconds)
