"""Model registry and the paper's student/teacher pairs (Table III).

Besides the architectural specs, each model carries a *proxy configuration*
used by :mod:`repro.learn`: the capacity of the trainable numpy stand-in and
its sensitivity to MX quantization.  Capacities are ordered
student < teacher within each pair, and ViT proxies are marked more
precision-sensitive, reproducing the paper's observation (section VII-B)
that ViTs suffer disproportionately under low-precision execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.errors import ModelSpecError
from repro.models.graph import ModelGraph
from repro.models.resnet import (
    resnet18,
    resnet34,
    wide_resnet50_2,
    wide_resnet101_2,
)
from repro.models.vit import vit_b_16, vit_b_32

__all__ = [
    "MODEL_BUILDERS",
    "MODEL_PAIRS",
    "ModelPair",
    "ProxyConfig",
    "get_model",
    "get_pair",
    "get_proxy_config",
]

#: Builders for every model evaluated in the paper.
MODEL_BUILDERS: dict[str, Callable[[], ModelGraph]] = {
    "resnet18": resnet18,
    "resnet34": resnet34,
    "wide_resnet50_2": wide_resnet50_2,
    "wide_resnet101_2": wide_resnet101_2,
    "vit_b_32": vit_b_32,
    "vit_b_16": vit_b_16,
}


@dataclass(frozen=True)
class ProxyConfig:
    """Behavioural-proxy knobs for a model (see DESIGN.md substitutions).

    Attributes:
        hidden_sizes: Hidden-layer widths of the numpy MLP proxy; more/wider
            layers mean a more capable (teacher-like) model.
        precision_sensitivity: Multiplier on MX quantization noise applied to
            the proxy; >1 models architectures that tolerate low precision
            poorly (ViTs, per the paper).
    """

    hidden_sizes: tuple[int, ...]
    precision_sensitivity: float = 1.0


#: Proxy configurations, capacity-ordered within each student/teacher pair.
#: Student widths are tuned so a student specializes well to one domain but
#: cannot represent all domains at once (the continuous-learning headroom);
#: teacher widths reach the task ceiling across every domain.
PROXY_CONFIGS: dict[str, ProxyConfig] = {
    "resnet18": ProxyConfig(hidden_sizes=(16,)),
    "resnet34": ProxyConfig(hidden_sizes=(20,)),
    "vit_b_32": ProxyConfig(hidden_sizes=(18,), precision_sensitivity=2.5),
    "wide_resnet50_2": ProxyConfig(hidden_sizes=(128, 64)),
    "vit_b_16": ProxyConfig(
        hidden_sizes=(128, 64), precision_sensitivity=2.5
    ),
    "wide_resnet101_2": ProxyConfig(hidden_sizes=(160, 80)),
}


@dataclass(frozen=True)
class ModelPair:
    """A (student, teacher) pair as evaluated in the paper.

    Attributes:
        name: Short pair identifier used throughout benchmarks.
        student: Student model name (runs inference on B-SA).
        teacher: Teacher model name (labels samples on T-SA).
    """

    name: str
    student: str
    teacher: str

    def student_graph(self) -> ModelGraph:
        """Architectural spec of the student."""
        return get_model(self.student)

    def teacher_graph(self) -> ModelGraph:
        """Architectural spec of the teacher."""
        return get_model(self.teacher)


#: The paper's three evaluated pairs (Table III groupings).
MODEL_PAIRS: dict[str, ModelPair] = {
    "resnet18_wrn50": ModelPair(
        "resnet18_wrn50", student="resnet18", teacher="wide_resnet50_2"
    ),
    "vit_b32_b16": ModelPair(
        "vit_b32_b16", student="vit_b_32", teacher="vit_b_16"
    ),
    "resnet34_wrn101": ModelPair(
        "resnet34_wrn101", student="resnet34", teacher="wide_resnet101_2"
    ),
}


@lru_cache(maxsize=None)
def get_model(name: str) -> ModelGraph:
    """Build (and cache) the architectural spec of a model by name."""
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_BUILDERS))
        raise ModelSpecError(f"unknown model {name!r}; known: {known}")
    return builder()


def get_pair(name: str) -> ModelPair:
    """Look up one of the paper's three model pairs by name."""
    try:
        return MODEL_PAIRS[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_PAIRS))
        raise ModelSpecError(f"unknown model pair {name!r}; known: {known}")


def get_proxy_config(name: str) -> ProxyConfig:
    """Proxy configuration for a model by name."""
    try:
        return PROXY_CONFIGS[name]
    except KeyError:
        known = ", ".join(sorted(PROXY_CONFIGS))
        raise ModelSpecError(f"no proxy config for {name!r}; known: {known}")
