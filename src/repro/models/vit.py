"""Vision Transformer architectural specs (torchvision-equivalent shapes).

ViT-B/32 (student) and ViT-B/16 (teacher) from the paper's Table III.  Both
use the Base configuration: 12 layers, 768 hidden, 12 heads, 3072 MLP.
"""

from __future__ import annotations

from repro.models.graph import ModelGraph
from repro.models.layers import Attention, Conv2d, Layer, Linear, Norm

__all__ = ["vit_b_16", "vit_b_32"]


def _build_vit(
    name: str,
    patch: int,
    depth: int = 12,
    dim: int = 768,
    heads: int = 12,
    mlp_dim: int = 3072,
    input_size: int = 224,
    num_classes: int = 1000,
) -> ModelGraph:
    """Assemble a ViT from its patch size and encoder configuration."""
    grid = input_size // patch
    seq = grid * grid + 1  # patches + CLS token

    layers: list[Layer] = []
    layers.append(
        Conv2d(
            name="patch_embed",
            in_channels=3,
            out_channels=dim,
            kernel=patch,
            stride=patch,
            padding=0,
            in_size=input_size,
            bias=True,
        )
    )
    # Learned CLS token and position embeddings: parameters without compute.
    layers.append(Layer(name="cls_token", params=dim))
    layers.append(Layer(name="pos_embed", params=seq * dim))

    for i in range(depth):
        layers.append(Norm(name=f"encoder.{i}.ln1", channels=dim))
        layers.append(
            Attention(name=f"encoder.{i}.attn", dim=dim, heads=heads, seq=seq)
        )
        layers.append(Norm(name=f"encoder.{i}.ln2", channels=dim))
        layers.append(
            Linear(
                name=f"encoder.{i}.mlp.fc1",
                in_features=dim,
                out_features=mlp_dim,
                tokens=seq,
            )
        )
        layers.append(
            Linear(
                name=f"encoder.{i}.mlp.fc2",
                in_features=mlp_dim,
                out_features=dim,
                tokens=seq,
            )
        )

    layers.append(Norm(name="ln_final", channels=dim))
    layers.append(Linear(name="head", in_features=dim, out_features=num_classes))
    return ModelGraph(
        name=name,
        layers=tuple(layers),
        input_size=input_size,
        num_classes=num_classes,
    )


def vit_b_32(input_size: int = 224, num_classes: int = 1000) -> ModelGraph:
    """ViT-B/32: 88.2M params, 4.37 GFLOPs (Table III student)."""
    return _build_vit(
        "vit_b_32", patch=32, input_size=input_size, num_classes=num_classes
    )


def vit_b_16(input_size: int = 224, num_classes: int = 1000) -> ModelGraph:
    """ViT-B/16: 86.6M params, 16.87 GFLOPs (Table III teacher)."""
    return _build_vit(
        "vit_b_16", patch=16, input_size=input_size, num_classes=num_classes
    )
