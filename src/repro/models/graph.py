"""Model graph: an ordered sequence of layer descriptors.

A :class:`ModelGraph` is the unit the performance estimator consumes.  It
exposes aggregate parameter counts, MAC counts (with and without attention
batched matmuls, to match the paper's Table III convention), and the GEMM
work list for a given batch size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelSpecError
from repro.models.layers import Attention, Gemm, Layer

__all__ = ["ModelGraph"]

#: Training compute relative to one forward pass: forward + input-gradient
#: + weight-gradient passes.  The standard 3x accounting used by the paper's
#: workload characterization (section III-B).
TRAINING_MACS_FACTOR = 3


@dataclass(frozen=True)
class ModelGraph:
    """An ordered feed-forward model description.

    Attributes:
        name: Model name as used in the paper (e.g. ``"resnet18"``).
        layers: Ordered layer descriptors.
        input_size: Input image side (square), e.g. 224.
        num_classes: Classification head width.
    """

    name: str
    layers: tuple[Layer, ...]
    input_size: int = 224
    num_classes: int = 1000
    _names: frozenset = field(init=False, repr=False, default=frozenset())

    def __post_init__(self) -> None:
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ModelSpecError(f"{self.name}: duplicate layer names {dupes}")
        object.__setattr__(self, "_names", frozenset(names))
        # Per-batch GEMM work-list memo (plain attribute, not a field, so it
        # stays out of __eq__/__hash__/__repr__).  Layers are immutable, so
        # the work list for a batch size never changes.
        object.__setattr__(self, "_gemm_cache", {})

    @property
    def params(self) -> int:
        """Total learnable parameters."""
        return sum(layer.params for layer in self.layers)

    def macs(self, batch: int = 1, include_attention_bmm: bool = True) -> int:
        """Forward-pass MACs for a batch.

        Args:
            batch: Batch size.
            include_attention_bmm: When False, excludes the per-head
                attention matmuls, reproducing the convention behind the
                paper's Table III GFLOPs column.
        """
        total = 0
        for layer in self.layers:
            if isinstance(layer, Attention):
                total += layer.macs(batch, include_attention_bmm)
            else:
                total += layer.macs(batch)
        return total

    def training_macs(self, batch: int = 1) -> int:
        """MACs for one training step (forward + backward)."""
        return TRAINING_MACS_FACTOR * self.macs(batch)

    @property
    def gflops(self) -> float:
        """Table III convention: GMACs per sample, attention bmm excluded."""
        return self.macs(1, include_attention_bmm=False) / 1e9

    def gemms(self, batch: int = 1) -> tuple[Gemm, ...]:
        """The full GEMM work list for one forward pass of a batch (memoized)."""
        cached = self._gemm_cache.get(batch)
        if cached is None:
            work: list[Gemm] = []
            for layer in self.layers:
                work.extend(layer.gemms(batch))
            cached = tuple(work)
            self._gemm_cache[batch] = cached
        return cached

    def weight_elems(self) -> int:
        """Parameter elements streamed per forward pass (equals params)."""
        return self.params

    def activation_elems(self, batch: int = 1) -> int:
        """Activation elements produced per forward pass of a batch."""
        return batch * sum(layer.out_elems for layer in self.layers)

    def layer(self, name: str) -> Layer:
        """Look up a layer by name."""
        if name not in self._names:
            raise ModelSpecError(f"{self.name}: no layer named {name!r}")
        for candidate in self.layers:
            if candidate.name == name:
                return candidate
        raise AssertionError("unreachable")

    def summary(self) -> str:
        """Human-readable one-line summary, Table III style."""
        return (
            f"{self.name}: {self.params / 1e6:.1f}M params, "
            f"{self.gflops:.2f} GFLOPs @ {self.input_size}px"
        )
