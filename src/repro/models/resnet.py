"""ResNet-family architectural specs (torchvision-equivalent shapes).

Builds layer-by-layer descriptions of ResNet18/34 (BasicBlock) and
WideResNet50-2/101-2 (Bottleneck with doubled inner width), reproducing the
parameter counts and GFLOPs of the paper's Table III.
"""

from __future__ import annotations

from repro.models.graph import ModelGraph
from repro.models.layers import Conv2d, Layer, Linear, Norm, Pool

__all__ = ["resnet18", "resnet34", "wide_resnet50_2", "wide_resnet101_2"]


def _conv_bn(
    name: str,
    in_channels: int,
    out_channels: int,
    kernel: int,
    stride: int,
    padding: int,
    in_size: int,
) -> list[Layer]:
    """A convolution followed by batch normalization (no conv bias)."""
    conv = Conv2d(
        name=f"{name}.conv",
        in_channels=in_channels,
        out_channels=out_channels,
        kernel=kernel,
        stride=stride,
        padding=padding,
        in_size=in_size,
    )
    return [conv, Norm(name=f"{name}.bn", channels=out_channels)]


def _basic_block(
    name: str, inplanes: int, planes: int, stride: int, in_size: int
) -> tuple[list[Layer], int, int]:
    """BasicBlock: two 3x3 convs plus an optional 1x1 downsample."""
    layers: list[Layer] = []
    layers += _conv_bn(f"{name}.0", inplanes, planes, 3, stride, 1, in_size)
    out_size = in_size // stride
    layers += _conv_bn(f"{name}.1", planes, planes, 3, 1, 1, out_size)
    if stride != 1 or inplanes != planes:
        layers += _conv_bn(f"{name}.down", inplanes, planes, 1, stride, 0, in_size)
    return layers, planes, out_size


def _bottleneck_block(
    name: str,
    inplanes: int,
    planes: int,
    width: int,
    stride: int,
    in_size: int,
) -> tuple[list[Layer], int, int]:
    """Bottleneck: 1x1 reduce, 3x3 spatial, 1x1 expand (expansion 4)."""
    expansion = 4
    out_channels = planes * expansion
    layers: list[Layer] = []
    layers += _conv_bn(f"{name}.0", inplanes, width, 1, 1, 0, in_size)
    layers += _conv_bn(f"{name}.1", width, width, 3, stride, 1, in_size)
    out_size = in_size // stride
    layers += _conv_bn(f"{name}.2", width, out_channels, 1, 1, 0, out_size)
    if stride != 1 or inplanes != out_channels:
        layers += _conv_bn(
            f"{name}.down", inplanes, out_channels, 1, stride, 0, in_size
        )
    return layers, out_channels, out_size


def _build_resnet(
    name: str,
    block_counts: tuple[int, int, int, int],
    bottleneck: bool,
    width_factor: int = 1,
    input_size: int = 224,
    num_classes: int = 1000,
) -> ModelGraph:
    """Assemble a full ResNet from its stage configuration."""
    layers: list[Layer] = []
    layers.append(
        Conv2d(
            name="conv1",
            in_channels=3,
            out_channels=64,
            kernel=7,
            stride=2,
            padding=3,
            in_size=input_size,
        )
    )
    layers.append(Norm(name="bn1", channels=64))
    layers.append(Pool(name="maxpool"))

    size = input_size // 4  # conv1 stride 2, maxpool stride 2
    inplanes = 64
    stage_planes = (64, 128, 256, 512)
    for stage, (planes, count) in enumerate(zip(stage_planes, block_counts), 1):
        for block in range(count):
            stride = 2 if stage > 1 and block == 0 else 1
            block_name = f"layer{stage}.{block}"
            if bottleneck:
                width = planes * width_factor
                block_layers, inplanes, size = _bottleneck_block(
                    block_name, inplanes, planes, width, stride, size
                )
            else:
                block_layers, inplanes, size = _basic_block(
                    block_name, inplanes, planes, stride, size
                )
            layers.extend(block_layers)

    layers.append(Pool(name="avgpool"))
    layers.append(
        Linear(name="fc", in_features=inplanes, out_features=num_classes)
    )
    return ModelGraph(
        name=name,
        layers=tuple(layers),
        input_size=input_size,
        num_classes=num_classes,
    )


def resnet18(input_size: int = 224, num_classes: int = 1000) -> ModelGraph:
    """ResNet-18: 11.7M params, 1.82 GFLOPs (Table III student)."""
    return _build_resnet(
        "resnet18", (2, 2, 2, 2), bottleneck=False,
        input_size=input_size, num_classes=num_classes,
    )


def resnet34(input_size: int = 224, num_classes: int = 1000) -> ModelGraph:
    """ResNet-34: 21.8M params, 3.67 GFLOPs (Table III student)."""
    return _build_resnet(
        "resnet34", (3, 4, 6, 3), bottleneck=False,
        input_size=input_size, num_classes=num_classes,
    )


def wide_resnet50_2(input_size: int = 224, num_classes: int = 1000) -> ModelGraph:
    """WideResNet50-2: 68.9M params, 11.43 GFLOPs (Table III teacher)."""
    return _build_resnet(
        "wide_resnet50_2", (3, 4, 6, 3), bottleneck=True, width_factor=2,
        input_size=input_size, num_classes=num_classes,
    )


def wide_resnet101_2(input_size: int = 224, num_classes: int = 1000) -> ModelGraph:
    """WideResNet101-2: 126.9M params, 22.80 GFLOPs (Table III teacher)."""
    return _build_resnet(
        "wide_resnet101_2", (3, 4, 23, 3), bottleneck=True, width_factor=2,
        input_size=input_size, num_classes=num_classes,
    )
