"""Layer descriptors and their lowering to GEMM shapes.

Every compute-bearing layer lowers to one or more :class:`Gemm` shapes, the
unit the systolic-array simulator schedules.  Non-GEMM layers (normalization,
pooling, activations) execute on the accelerator's vector processing unit;
they carry parameters and activation footprints but no GEMMs, and their
runtime is folded into the vector-unit overhead factor of the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelSpecError

__all__ = ["Gemm", "Layer", "Conv2d", "Linear", "Norm", "Pool", "Attention"]


@dataclass(frozen=True)
class Gemm:
    """An ``(M x K) @ (K x N)`` matrix multiplication.

    Attributes:
        m: Output rows (spatial positions x batch for convs, tokens for ViT).
        k: Contraction depth (streams through the DPE dot products).
        n: Output columns (output channels / features).
    """

    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) < 1:
            raise ModelSpecError(f"GEMM dims must be positive, got {self}")

    @property
    def macs(self) -> int:
        """Multiply-accumulate count."""
        return self.m * self.k * self.n

    def scaled_batch(self, batch: int) -> "Gemm":
        """The same GEMM with ``M`` scaled for a larger batch."""
        return Gemm(self.m * batch, self.k, self.n)


@dataclass(frozen=True)
class Layer:
    """Base layer descriptor.

    Attributes:
        name: Unique name within the model (e.g. ``"layer1.0.conv2"``).
        params: Learnable parameter count.
        out_elems: Activation elements produced per sample (memory traffic).
    """

    name: str
    params: int = 0
    out_elems: int = 0

    def gemms(self, batch: int = 1) -> tuple[Gemm, ...]:
        """GEMMs this layer issues for a batch of ``batch`` samples."""
        return ()

    def macs(self, batch: int = 1) -> int:
        """Total MACs for a batch (all GEMMs included)."""
        return sum(g.macs for g in self.gemms(batch))


def conv_out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial size of a convolution along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


@dataclass(frozen=True)
class Conv2d(Layer):
    """2-D convolution, lowered to a single im2col GEMM.

    Attributes:
        in_channels / out_channels: Channel counts.
        kernel: Square kernel size.
        stride: Stride (same both dims).
        padding: Zero padding (same both dims).
        in_size: Input spatial size (square feature map).
        bias: Whether a bias vector is learned (ResNets use BN instead).
    """

    in_channels: int = 0
    out_channels: int = 0
    kernel: int = 1
    stride: int = 1
    padding: int = 0
    in_size: int = 0
    bias: bool = False
    params: int = field(init=False, default=0)
    out_elems: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.in_channels < 1 or self.out_channels < 1 or self.in_size < 1:
            raise ModelSpecError(f"invalid Conv2d spec: {self.name}")
        weights = self.in_channels * self.kernel * self.kernel * self.out_channels
        if self.bias:
            weights += self.out_channels
        object.__setattr__(self, "params", weights)
        out = self.out_size
        object.__setattr__(self, "out_elems", out * out * self.out_channels)

    @property
    def out_size(self) -> int:
        """Output spatial size."""
        return conv_out_size(self.in_size, self.kernel, self.stride, self.padding)

    def gemms(self, batch: int = 1) -> tuple[Gemm, ...]:
        out = self.out_size
        return (
            Gemm(
                m=out * out * batch,
                k=self.in_channels * self.kernel * self.kernel,
                n=self.out_channels,
            ),
        )


@dataclass(frozen=True)
class Linear(Layer):
    """Fully connected layer: one ``(rows x in) @ (in x out)`` GEMM.

    ``tokens`` is the number of positions the layer is applied to per sample
    (1 for a classification head, sequence length for a transformer MLP).
    """

    in_features: int = 0
    out_features: int = 0
    bias: bool = True
    tokens: int = 1
    params: int = field(init=False, default=0)
    out_elems: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.in_features < 1 or self.out_features < 1 or self.tokens < 1:
            raise ModelSpecError(f"invalid Linear spec: {self.name}")
        weights = self.in_features * self.out_features
        if self.bias:
            weights += self.out_features
        object.__setattr__(self, "params", weights)
        object.__setattr__(self, "out_elems", self.tokens * self.out_features)

    def gemms(self, batch: int = 1) -> tuple[Gemm, ...]:
        return (
            Gemm(m=batch * self.tokens, k=self.in_features, n=self.out_features),
        )


@dataclass(frozen=True)
class Norm(Layer):
    """Batch/layer normalization: 2 learnable vectors, vector-unit compute."""

    channels: int = 0
    params: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ModelSpecError(f"invalid Norm spec: {self.name}")
        object.__setattr__(self, "params", 2 * self.channels)


@dataclass(frozen=True)
class Pool(Layer):
    """Pooling layer: no parameters, vector-unit compute only."""


@dataclass(frozen=True)
class Attention(Layer):
    """Multi-head self-attention block (ViT style).

    The QKV and output projections are ordinary GEMMs.  The per-head
    ``Q @ K^T`` and ``softmax @ V`` batched matmuls are modeled as GEMMs too
    (one per head), but flagged so callers can reproduce the paper's Table
    III FLOP convention, which excludes them.

    Attributes:
        dim: Embedding dimension.
        heads: Number of attention heads.
        seq: Sequence length (tokens, CLS included).
    """

    dim: int = 0
    heads: int = 0
    seq: int = 0
    params: int = field(init=False, default=0)
    out_elems: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.dim < 1 or self.heads < 1 or self.seq < 1:
            raise ModelSpecError(f"invalid Attention spec: {self.name}")
        if self.dim % self.heads:
            raise ModelSpecError(
                f"{self.name}: dim {self.dim} not divisible by heads {self.heads}"
            )
        # QKV projection (dim -> 3*dim, with bias) + output proj (dim -> dim).
        qkv = self.dim * 3 * self.dim + 3 * self.dim
        proj = self.dim * self.dim + self.dim
        object.__setattr__(self, "params", qkv + proj)
        object.__setattr__(self, "out_elems", self.seq * self.dim)

    @property
    def head_dim(self) -> int:
        """Per-head feature dimension."""
        return self.dim // self.heads

    def projection_gemms(self, batch: int = 1) -> tuple[Gemm, ...]:
        """The QKV and output projection GEMMs (Table III convention)."""
        tokens = self.seq * batch
        return (
            Gemm(m=tokens, k=self.dim, n=3 * self.dim),
            Gemm(m=tokens, k=self.dim, n=self.dim),
        )

    def attention_gemms(self, batch: int = 1) -> tuple[Gemm, ...]:
        """The score (``Q @ K^T``) and value (``A @ V``) matmuls, per head."""
        per_head = (
            Gemm(m=self.seq, k=self.head_dim, n=self.seq),
            Gemm(m=self.seq, k=self.seq, n=self.head_dim),
        )
        return per_head * (self.heads * batch)

    def gemms(self, batch: int = 1) -> tuple[Gemm, ...]:
        return self.projection_gemms(batch) + self.attention_gemms(batch)

    def macs(self, batch: int = 1, include_attention_bmm: bool = True) -> int:
        total = sum(g.macs for g in self.projection_gemms(batch))
        if include_attention_bmm:
            total += sum(g.macs for g in self.attention_gemms(batch))
        return total
