"""Architectural specs of the DNNs evaluated in the paper (Table III).

The accelerator simulator does not execute real networks; it needs the exact
sequence of GEMM shapes each network lowers to, together with parameter and
activation footprints.  This subpackage describes the six evaluated models --
ResNet18/34, WideResNet50/101 (width x2), ViT-B/32 and ViT-B/16 -- layer by
layer, reproducing the parameter counts and GFLOPs the paper reports.

Conventions:

- FLOP counts follow the paper's Table III convention (1 MAC = 1 "FLOP",
  attention score/value batched matmuls excluded -- the convention of common
  FLOP-counting tools).  The full compute model used for accelerator timing
  *includes* the attention matmuls; see :meth:`ModelGraph.macs`.
- Convolutions lower to GEMM via im2col: ``M = out_h * out_w * batch``,
  ``K = in_ch * kh * kw``, ``N = out_ch``.
"""

from repro.models.layers import (
    Attention,
    Conv2d,
    Gemm,
    Layer,
    Linear,
    Norm,
    Pool,
)
from repro.models.graph import ModelGraph
from repro.models.resnet import (
    resnet18,
    resnet34,
    wide_resnet50_2,
    wide_resnet101_2,
)
from repro.models.vit import vit_b_16, vit_b_32
from repro.models.zoo import (
    MODEL_BUILDERS,
    MODEL_PAIRS,
    ModelPair,
    get_model,
    get_pair,
)

__all__ = [
    "Attention",
    "Conv2d",
    "Gemm",
    "Layer",
    "Linear",
    "MODEL_BUILDERS",
    "MODEL_PAIRS",
    "ModelGraph",
    "ModelPair",
    "Norm",
    "Pool",
    "get_model",
    "get_pair",
    "resnet18",
    "resnet34",
    "vit_b_16",
    "vit_b_32",
    "wide_resnet50_2",
    "wide_resnet101_2",
]
