"""Exception hierarchy for the repro package.

All exceptions raised by this package derive from :class:`ReproError` so
callers can catch package-level failures with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigurationError(ReproError):
    """An invalid configuration value or combination was supplied."""


class AdmissionRefused(ReproError):
    """The service declined to admit a new stream under load.

    Raised (and mapped to HTTP 503 by the control plane) when the fleet
    is degraded to the point of shedding windows: admitting more work
    would only deepen the overload.  Distinct from
    :class:`ConfigurationError` -- the request was well-formed; retry it
    once the fleet recovers.
    """


class QuantizationError(ReproError):
    """Input cannot be represented in the requested MX format."""


class PartitionError(ReproError):
    """An invalid spatial partition of the accelerator was requested."""


class ScheduleError(ReproError):
    """The scheduler was driven into an invalid state."""


class ExecutionError(ReproError):
    """A dispatch-layer failure: worker death, transport or protocol fault.

    Distinct from :class:`ConfigurationError` -- the configuration was
    fine, the execution environment failed -- so callers (the CLI) can map
    it to a different exit status.  The concrete subtype every backend
    raises is :class:`repro.exec.ShardFailure`, which names the cells
    whose results are missing.
    """


class ProtocolError(ExecutionError):
    """A worker spoke an invalid or incompatible shard-protocol message."""


class SnapshotError(ReproError):
    """A run-state snapshot is invalid or incompatible with this run.

    Raised by :mod:`repro.core.snapshot` decode/restore when a snapshot's
    version, numeric policy, cell identity, or clock does not match the run
    being resumed.  Callers treat it as "recompute from scratch", never as
    "proceed with mismatched state".
    """


class ModelSpecError(ReproError):
    """A DNN architectural spec is malformed or unknown."""


class ScenarioError(ReproError):
    """A workload scenario is malformed or unknown."""
