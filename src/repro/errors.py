"""Exception hierarchy for the repro package.

All exceptions raised by this package derive from :class:`ReproError` so
callers can catch package-level failures with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigurationError(ReproError):
    """An invalid configuration value or combination was supplied."""


class QuantizationError(ReproError):
    """Input cannot be represented in the requested MX format."""


class PartitionError(ReproError):
    """An invalid spatial partition of the accelerator was requested."""


class ScheduleError(ReproError):
    """The scheduler was driven into an invalid state."""


class ModelSpecError(ReproError):
    """A DNN architectural spec is malformed or unknown."""


class ScenarioError(ReproError):
    """A workload scenario is malformed or unknown."""
